// Pre/post-refactor golden check for the staged pipeline framework.
//
// Runs every pipeline (CPU narrow/wide, GPU k-mer, GPU supermer) across the
// exchange modes, routing schemes, filters and round limits, and serializes
// everything the framework is required to keep bit-identical: the k-mer
// spectrum, the deterministic fields of every RankMetrics (doubles rendered
// as hexfloats, so a one-ULP drift fails), and the trace metrics JSON on
// the modeled clock. The golden files were captured from the hand-rolled
// pipelines before the PhaseScope/ExchangePlan/RoundRunner refactor; any
// change to modeled charges, exchange accounting or span structure shows up
// as a byte diff.
//
// Regenerate (only when a change to observable accounting is intended):
//   DEDUKT_UPDATE_GOLDEN=1 ./dedukt_core_tests
//     --gtest_filter='PipelineFrameworkGolden.*'
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/synthetic.hpp"
#include "dedukt/trace/trace.hpp"

#ifndef DEDUKT_TEST_DATA_DIR
#define DEDUKT_TEST_DATA_DIR "."
#endif

namespace dedukt::core {
namespace {

io::ReadBatch golden_reads() {
  io::GenomeSpec gspec;
  gspec.length = 5'000;
  gspec.seed = 42;
  io::ReadSpec rspec;
  rspec.coverage = 4.0;
  rspec.mean_read_length = 400;
  rspec.min_read_length = 80;
  rspec.seed = 43;
  return io::generate_dataset(gspec, rspec);
}

/// Exact, deterministic rendering of a double: hexfloat, so that any
/// change in rounding or evaluation order changes the byte stream.
std::string hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

void append_phase_times(std::ostringstream& out, const char* label,
                        const PhaseTimes& times) {
  out << "  " << label << ":";
  for (const auto& [phase, seconds] : times.phases()) {
    out << " " << phase << "=" << hex(seconds);
  }
  out << "\n";
}

void append_rank(std::ostringstream& out, const RankMetrics& m) {
  out << "  reads=" << m.reads << " bases=" << m.bases
      << " kmers_parsed=" << m.kmers_parsed
      << " supermers_built=" << m.supermers_built
      << " supermer_bases=" << m.supermer_bases
      << " kmers_received=" << m.kmers_received
      << " supermers_received=" << m.supermers_received
      << " bytes_sent=" << m.bytes_sent
      << " bytes_received=" << m.bytes_received
      << " unique=" << m.unique_kmers << " counted=" << m.counted_kmers
      << "\n";
  append_phase_times(out, "modeled", m.modeled);
  append_phase_times(out, "modeled_volume", m.modeled_volume);
  out << "  alltoallv=" << hex(m.modeled_alltoallv_seconds)
      << " alltoallv_volume=" << hex(m.modeled_alltoallv_volume_seconds)
      << "\n";
}

void append_spectrum(std::ostringstream& out,
                     const std::map<std::uint64_t, std::uint64_t>& spectrum) {
  out << "spectrum:";
  for (const auto& [multiplicity, distinct] : spectrum) {
    out << " " << multiplicity << ":" << distinct;
  }
  out << "\n";
}

/// Run one narrow-pipeline scenario under an in-memory trace session and
/// render everything deterministic about it.
std::string capture(const DriverOptions& options) {
  auto& session = trace::TraceSession::instance();
  session.reset();
  session.enable("");
  const CountResult result = run_distributed_count(golden_reads(), options);
  const std::string metrics_json =
      session.metrics().to_json(/*include_wall=*/false);
  session.disable();

  std::ostringstream out;
  append_spectrum(out, result.spectrum());
  for (int r = 0; r < result.nranks; ++r) {
    out << "rank " << r << ":\n";
    append_rank(out, result.ranks[static_cast<std::size_t>(r)]);
  }
  out << "trace_metrics: " << metrics_json << "\n";
  return out.str();
}

std::string capture_wide(const DriverOptions& options) {
  auto& session = trace::TraceSession::instance();
  session.reset();
  session.enable("");
  const WideCountResult result =
      run_distributed_count_wide(golden_reads(), options);
  const std::string metrics_json =
      session.metrics().to_json(/*include_wall=*/false);
  session.disable();

  std::map<std::uint64_t, std::uint64_t> spectrum;
  for (const auto& [key, count] : result.global_counts) {
    spectrum[count] += 1;
  }
  std::ostringstream out;
  append_spectrum(out, spectrum);
  for (int r = 0; r < result.base.nranks; ++r) {
    out << "rank " << r << ":\n";
    append_rank(out, result.base.ranks[static_cast<std::size_t>(r)]);
  }
  out << "trace_metrics: " << metrics_json << "\n";
  return out.str();
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path =
      std::string(DEDUKT_TEST_DATA_DIR) + "/golden_" + name + ".txt";
  if (std::getenv("DEDUKT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with DEDUKT_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual) << "byte diff against seed golden "
                                    << path;
}

DriverOptions base_options(PipelineKind kind) {
  DriverOptions options;
  options.pipeline.kind = kind;
  options.pipeline.k = 17;
  options.nranks = 4;
  return options;
}

TEST(PipelineFrameworkGolden, Cpu) {
  check_golden("cpu", capture(base_options(PipelineKind::kCpu)));
}

TEST(PipelineFrameworkGolden, CpuMultiRound) {
  DriverOptions options = base_options(PipelineKind::kCpu);
  options.pipeline.max_kmers_per_round = 1'500;
  check_golden("cpu_multiround", capture(options));
}

TEST(PipelineFrameworkGolden, CpuWide) {
  DriverOptions options = base_options(PipelineKind::kCpu);
  options.pipeline.k = 33;
  options.nranks = 3;
  check_golden("cpu_wide", capture_wide(options));
}

TEST(PipelineFrameworkGolden, CpuWideMultiRound) {
  DriverOptions options = base_options(PipelineKind::kCpu);
  options.pipeline.k = 33;
  options.pipeline.max_kmers_per_round = 1'500;
  check_golden("cpu_wide_multiround", capture_wide(options));
}

TEST(PipelineFrameworkGolden, GpuKmerStaged) {
  check_golden("gpu_kmer_staged", capture(base_options(PipelineKind::kGpuKmer)));
}

TEST(PipelineFrameworkGolden, GpuKmerDirect) {
  DriverOptions options = base_options(PipelineKind::kGpuKmer);
  options.pipeline.exchange = ExchangeMode::kGpuDirect;
  check_golden("gpu_kmer_direct", capture(options));
}

TEST(PipelineFrameworkGolden, GpuKmerConsolidated) {
  DriverOptions options = base_options(PipelineKind::kGpuKmer);
  options.pipeline.source_consolidation = true;
  check_golden("gpu_kmer_consolidated", capture(options));
}

TEST(PipelineFrameworkGolden, GpuKmerFiltered) {
  DriverOptions options = base_options(PipelineKind::kGpuKmer);
  options.pipeline.filter_singletons = true;
  check_golden("gpu_kmer_filtered", capture(options));
}

TEST(PipelineFrameworkGolden, GpuKmerMultiRound) {
  DriverOptions options = base_options(PipelineKind::kGpuKmer);
  options.pipeline.max_kmers_per_round = 1'500;
  check_golden("gpu_kmer_multiround", capture(options));
}

TEST(PipelineFrameworkGolden, GpuSupermerStaged) {
  check_golden("gpu_supermer_staged",
               capture(base_options(PipelineKind::kGpuSupermer)));
}

TEST(PipelineFrameworkGolden, GpuSupermerDirect) {
  DriverOptions options = base_options(PipelineKind::kGpuSupermer);
  options.pipeline.exchange = ExchangeMode::kGpuDirect;
  check_golden("gpu_supermer_direct", capture(options));
}

TEST(PipelineFrameworkGolden, GpuSupermerWide) {
  DriverOptions options = base_options(PipelineKind::kGpuSupermer);
  options.pipeline.wide_supermers = true;
  options.pipeline.window = 40;
  check_golden("gpu_supermer_wide", capture(options));
}

TEST(PipelineFrameworkGolden, GpuSupermerFreqBalanced) {
  DriverOptions options = base_options(PipelineKind::kGpuSupermer);
  options.pipeline.partition = PartitionScheme::kFrequencyBalanced;
  check_golden("gpu_supermer_freq", capture(options));
}

TEST(PipelineFrameworkGolden, GpuSupermerFiltered) {
  DriverOptions options = base_options(PipelineKind::kGpuSupermer);
  options.pipeline.filter_singletons = true;
  check_golden("gpu_supermer_filtered", capture(options));
}

TEST(PipelineFrameworkGolden, GpuSupermerMultiRound) {
  DriverOptions options = base_options(PipelineKind::kGpuSupermer);
  options.pipeline.max_kmers_per_round = 1'500;
  check_golden("gpu_supermer_multiround", capture(options));
}

}  // namespace
}  // namespace dedukt::core
