// End-to-end determinism across DEDUKT_SIM_THREADS: the full k-mer and
// supermer pipelines must produce bit-identical spectra, work counts, and
// modeled times whether the simulated kernels run sequentially or on a
// pool of host workers. (The Bloom-filtered path is excluded by design —
// its ±1-false-positive outcomes depend on filter fill *order*; see
// docs/performance-model.md.)
#include "dedukt/core/driver.hpp"

#include <gtest/gtest.h>

#include "dedukt/io/datasets.hpp"
#include "dedukt/util/thread_pool.hpp"

namespace dedukt::core {
namespace {

struct PoolGuard {
  ~PoolGuard() { util::ThreadPool::set_global_threads(1); }
};

io::ReadBatch preset_reads() {
  return io::make_dataset(*io::find_preset("ecoli30x"), /*scale=*/2000,
                          /*seed=*/7);
}

CountResult run_at(unsigned threads, PipelineKind kind,
                   const io::ReadBatch& reads) {
  util::ThreadPool::set_global_threads(threads);
  DriverOptions options;
  options.pipeline.kind = kind;
  options.nranks = 4;
  return run_distributed_count(reads, options);
}

void expect_identical(const CountResult& a, const CountResult& b,
                      unsigned threads) {
  SCOPED_TRACE(testing::Message() << "pool size " << threads);
  // Exact spectra: same (k-mer, count) pairs in the same sorted order.
  EXPECT_EQ(a.global_counts, b.global_counts);
  EXPECT_EQ(a.spectrum(), b.spectrum());

  const RankMetrics ta = a.totals();
  const RankMetrics tb = b.totals();
  EXPECT_EQ(ta.kmers_parsed, tb.kmers_parsed);
  EXPECT_EQ(ta.supermers_built, tb.supermers_built);
  EXPECT_EQ(ta.kmers_received, tb.kmers_received);
  EXPECT_EQ(ta.bytes_sent, tb.bytes_sent);
  EXPECT_EQ(ta.bytes_received, tb.bytes_received);
  EXPECT_EQ(ta.unique_kmers, tb.unique_kmers);
  EXPECT_EQ(ta.counted_kmers, tb.counted_kmers);

  // Modeled Summit time is priced from launch counters and comm bytes, so
  // it must be *bit*-identical — exact double equality, per rank and phase.
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    SCOPED_TRACE(testing::Message() << "rank " << r);
    EXPECT_EQ(a.ranks[r].modeled.phases(), b.ranks[r].modeled.phases());
    EXPECT_EQ(a.ranks[r].modeled_alltoallv_seconds,
              b.ranks[r].modeled_alltoallv_seconds);
  }
  EXPECT_EQ(a.modeled_total_seconds(), b.modeled_total_seconds());
}

TEST(SimThreadsDeterminismTest, KmerPipelineIdenticalAcrossPoolSizes) {
  PoolGuard guard;
  const io::ReadBatch reads = preset_reads();
  const CountResult sequential = run_at(1, PipelineKind::kGpuKmer, reads);
  EXPECT_GT(sequential.global_counts.size(), 0u);
  for (const unsigned threads : {2u, 8u}) {
    expect_identical(run_at(threads, PipelineKind::kGpuKmer, reads),
                     sequential, threads);
  }
}

TEST(SimThreadsDeterminismTest, SupermerPipelineIdenticalAcrossPoolSizes) {
  PoolGuard guard;
  const io::ReadBatch reads = preset_reads();
  const CountResult sequential =
      run_at(1, PipelineKind::kGpuSupermer, reads);
  EXPECT_GT(sequential.global_counts.size(), 0u);
  for (const unsigned threads : {2u, 8u}) {
    expect_identical(run_at(threads, PipelineKind::kGpuSupermer, reads),
                     sequential, threads);
  }
}

TEST(SimThreadsDeterminismTest, Kmc2OrderAlsoDeterministic) {
  // A second configuration axis (KMC2 minimizer order, odd rank count) to
  // guard against order-sensitivity hiding in a non-default path.
  PoolGuard guard;
  const io::ReadBatch reads = preset_reads();
  auto run = [&](unsigned threads) {
    util::ThreadPool::set_global_threads(threads);
    DriverOptions options;
    options.pipeline.kind = PipelineKind::kGpuSupermer;
    options.pipeline.order = kmer::MinimizerOrder::kKmc2;
    options.nranks = 3;
    return run_distributed_count(reads, options);
  };
  const CountResult sequential = run(1);
  expect_identical(run(8), sequential, 8);
}

}  // namespace
}  // namespace dedukt::core
