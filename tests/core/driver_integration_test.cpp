#include "dedukt/core/driver.hpp"

#include <gtest/gtest.h>

#include "dedukt/io/datasets.hpp"
#include "dedukt/io/synthetic.hpp"

namespace dedukt::core {
namespace {

io::ReadBatch preset_reads() {
  // A strongly down-scaled E. coli 30X (fast enough for unit tests).
  return io::make_dataset(*io::find_preset("ecoli30x"), /*scale=*/2000,
                          /*seed=*/5);
}

TEST(DriverTest, MetricsArePopulatedPerRank) {
  DriverOptions options;
  options.nranks = 6;
  const CountResult result = run_distributed_count(preset_reads(), options);
  ASSERT_EQ(result.ranks.size(), 6u);
  for (const auto& rank : result.ranks) {
    EXPECT_GT(rank.bases, 0u);
    EXPECT_GT(rank.kmers_parsed, 0u);
    EXPECT_GT(rank.supermers_built, 0u);
    EXPECT_GT(rank.measured.get(kPhaseParse), 0.0);
    EXPECT_GT(rank.modeled.get(kPhaseParse), 0.0);
    EXPECT_GT(rank.modeled.get(kPhaseExchange), 0.0);
    EXPECT_GT(rank.modeled.get(kPhaseCount), 0.0);
  }
}

TEST(DriverTest, ModeledBreakdownIsPerPhaseMax) {
  DriverOptions options;
  options.nranks = 4;
  const CountResult result = run_distributed_count(preset_reads(), options);
  const PhaseTimes breakdown = result.modeled_breakdown();
  for (const char* phase : {kPhaseParse, kPhaseExchange, kPhaseCount}) {
    double max_seen = 0;
    for (const auto& rank : result.ranks) {
      max_seen = std::max(max_seen, rank.modeled.get(phase));
    }
    EXPECT_DOUBLE_EQ(breakdown.get(phase), max_seen) << phase;
  }
  EXPECT_DOUBLE_EQ(result.modeled_total_seconds(), breakdown.total());
}

TEST(DriverTest, SupermerBasesAndCountsConsistent) {
  DriverOptions options;
  options.nranks = 5;
  const CountResult result = run_distributed_count(preset_reads(), options);
  const auto totals = result.totals();
  // Structural identity: sum(len) = kmers + (k-1) * supermers.
  EXPECT_EQ(totals.supermer_bases,
            totals.kmers_parsed +
                static_cast<std::uint64_t>(options.pipeline.k - 1) *
                    totals.supermers_built);
}

TEST(DriverTest, BytesSentMatchBytesReceivedGlobally) {
  DriverOptions options;
  options.nranks = 6;
  const CountResult result = run_distributed_count(preset_reads(), options);
  const auto totals = result.totals();
  EXPECT_EQ(totals.bytes_sent, totals.bytes_received);
  EXPECT_GT(totals.bytes_sent, 0u);
}

TEST(DriverTest, CollectCountsOffSkipsGlobalTable) {
  DriverOptions options;
  options.nranks = 3;
  options.collect_counts = false;
  const CountResult result = run_distributed_count(preset_reads(), options);
  EXPECT_TRUE(result.global_counts.empty());
  EXPECT_GT(result.totals().counted_kmers, 0u);
}

TEST(DriverTest, UniqueKmersMatchGlobalTableSize) {
  DriverOptions options;
  options.nranks = 4;
  const CountResult result = run_distributed_count(preset_reads(), options);
  EXPECT_EQ(result.total_unique(), result.global_counts.size());
}

TEST(DriverTest, SpectrumSumsToUnique) {
  DriverOptions options;
  options.nranks = 4;
  const CountResult result = run_distributed_count(preset_reads(), options);
  std::uint64_t spectrum_total = 0;
  for (const auto& [multiplicity, count] : result.spectrum()) {
    EXPECT_GE(multiplicity, 1u);
    spectrum_total += count;
  }
  EXPECT_EQ(spectrum_total, result.total_unique());
}

TEST(DriverTest, CoverageShowsUpInSpectrum) {
  // A 30X dataset's spectrum should have substantial mass well above
  // multiplicity 1 (k-mers from coverage overlap).
  DriverOptions options;
  options.nranks = 4;
  const CountResult result = run_distributed_count(preset_reads(), options);
  const auto spectrum = result.spectrum();
  std::uint64_t multi = 0, total = 0;
  for (const auto& [multiplicity, count] : spectrum) {
    total += count;
    if (multiplicity >= 5) multi += count;
  }
  EXPECT_GT(multi, total / 4);
}

TEST(DriverTest, LoadImbalanceReasonableForKmerPartitioning) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuKmer;
  options.nranks = 8;
  const CountResult result = run_distributed_count(preset_reads(), options);
  // Table III: hash partitioning of k-mers is near-balanced (paper: 1.13).
  EXPECT_LT(result.load_imbalance(), 1.3);
  const auto [lo, hi] = result.min_max_load();
  EXPECT_GT(lo, 0u);
  EXPECT_GE(hi, lo);
}

TEST(DriverTest, SupermerImbalanceAtLeastKmerImbalance) {
  // Table III: minimizer partitioning introduces skew (1.16-2.37 vs 1.13).
  DriverOptions kmer_opts;
  kmer_opts.pipeline.kind = PipelineKind::kGpuKmer;
  kmer_opts.nranks = 8;
  DriverOptions smer_opts = kmer_opts;
  smer_opts.pipeline.kind = PipelineKind::kGpuSupermer;
  const io::ReadBatch reads = preset_reads();
  const double kmer_imb =
      run_distributed_count(reads, kmer_opts).load_imbalance();
  const double smer_imb =
      run_distributed_count(reads, smer_opts).load_imbalance();
  EXPECT_GE(smer_imb, kmer_imb * 0.95);  // allow statistical noise
}

TEST(DriverTest, RanksPerNodeDefaultsFollowPipelineKind) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kCpu;
  EXPECT_EQ(options.effective_ranks_per_node(), summit::kCoresPerNode);
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  EXPECT_EQ(options.effective_ranks_per_node(), summit::kGpusPerNode);
  options.ranks_per_node = 3;
  EXPECT_EQ(options.effective_ranks_per_node(), 3);
}

TEST(DriverTest, GpuModeledTimeFarBelowCpuModeledTime) {
  // Fig. 3 / Fig. 6: the GPU pipelines beat the CPU baseline by orders of
  // magnitude on modeled Summit time.
  const io::ReadBatch reads = preset_reads();
  DriverOptions cpu;
  cpu.pipeline.kind = PipelineKind::kCpu;
  cpu.nranks = 8;
  DriverOptions gpu;
  gpu.pipeline.kind = PipelineKind::kGpuKmer;
  gpu.nranks = 8;
  // Compare at a projected full-size volume (x2000) so the GPU pipelines'
  // fixed per-phase overheads — which dominate on unit-test-sized inputs,
  // exactly as in Fig. 6a — do not mask the asymptotic gap.
  const double cpu_time = run_distributed_count(reads, cpu)
                              .projected_breakdown(2000.0)
                              .total();
  const double gpu_time = run_distributed_count(reads, gpu)
                              .projected_breakdown(2000.0)
                              .total();
  EXPECT_GT(cpu_time / gpu_time, 10.0);
}

TEST(DriverTest, InvalidOptionsThrow) {
  DriverOptions options;
  options.nranks = 0;
  EXPECT_THROW(run_distributed_count(io::ReadBatch{}, options),
               PreconditionError);
}

}  // namespace
}  // namespace dedukt::core
