// Load-factor behavior of DeviceHashTable: near-full tables keep their
// probe charges bit-identical across pool sizes (the parking-function
// charging argument holds at any load factor, and the block-local
// aggregation layer must not break it), and a table that genuinely fills
// fails with a clean SimulationError on both counting paths.
#include "dedukt/core/device_hash_table.hpp"

#include <gtest/gtest.h>

#include "dedukt/util/rng.hpp"
#include "dedukt/util/thread_pool.hpp"

namespace dedukt::core {
namespace {

struct PoolGuard {
  ~PoolGuard() { util::ThreadPool::set_global_threads(1); }
};

// Keys drawn so the table lands near the requested load factor, with a
// duplicate-heavy tail to exercise both the claim and hit charge paths.
std::vector<std::uint64_t> near_full_keys(std::size_t unique,
                                          std::size_t duplicates,
                                          std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(unique + duplicates);
  for (std::size_t i = 0; i < unique; ++i) {
    keys.push_back(rng() | 1);  // never kInvalidCode
  }
  for (std::size_t i = 0; i < duplicates; ++i) {
    keys.push_back(keys[rng.below(unique)]);
  }
  return keys;
}

gpusim::LaunchStats count_at(unsigned pool_threads,
                             const std::vector<std::uint64_t>& keys,
                             std::size_t expected_keys, double headroom,
                             bool smem_agg) {
  util::ThreadPool::set_global_threads(pool_threads);
  gpusim::Device device;
  auto d_keys = device.alloc<std::uint64_t>(keys.size());
  device.copy_to_device<std::uint64_t>(keys, d_keys);
  DeviceHashTable table(device, expected_keys, headroom, smem_agg);
  return table.count_kmers(d_keys, keys.size());
}

TEST(HashLoadFactorTest, ProbeChargesInvariantAcrossPoolSizesNearCapacity) {
  PoolGuard guard;
  // 3900 unique keys into a capacity-4096 table (expected*1.05 = 4095
  // rounds up to the next power of two): ~95% load, long probe chains.
  for (const bool smem_agg : {false, true}) {
    SCOPED_TRACE(testing::Message() << "smem_agg=" << smem_agg);
    const auto keys = near_full_keys(3900, 4000, 91);
    const auto base = count_at(1, keys, 3900, /*headroom=*/1.05, smem_agg);
    EXPECT_GT(base.counters.gmem_read_bytes, 0u);
    for (const unsigned threads : {2u, 4u}) {
      SCOPED_TRACE(testing::Message() << "pool size " << threads);
      const auto stats = count_at(threads, keys, 3900, 1.05, smem_agg);
      EXPECT_EQ(stats.counters.gmem_read_bytes, base.counters.gmem_read_bytes);
      EXPECT_EQ(stats.counters.atomics, base.counters.atomics);
      EXPECT_EQ(stats.counters.ops, base.counters.ops);
      EXPECT_EQ(stats.counters.smem_read_bytes,
                base.counters.smem_read_bytes);
      EXPECT_EQ(stats.counters.smem_atomics, base.counters.smem_atomics);
      EXPECT_EQ(stats.modeled_seconds, base.modeled_seconds);
    }
  }
}

TEST(HashLoadFactorTest, ChargesGrowWithLoadFactor) {
  // Same key multiset, shrinking headroom: the parking-function total
  // displacement (and so the probe charge) must be monotone in load.
  PoolGuard guard;
  util::ThreadPool::set_global_threads(1);
  const auto keys = near_full_keys(4000, 0, 92);
  std::uint64_t last_read_bytes = 0;
  // Capacities 16384 / 8192 / 4096: 24%, 49%, 98% load.
  for (const double headroom : {4.0, 2.0, 1.0}) {
    const auto stats = count_at(1, keys, 4000, headroom, /*smem_agg=*/true);
    EXPECT_GE(stats.counters.gmem_read_bytes, last_read_bytes)
        << "headroom " << headroom;
    last_read_bytes = stats.counters.gmem_read_bytes;
  }
}

TEST(HashLoadFactorTest, FullTableThrowsCleanlyOnBothPaths) {
  for (const bool smem_agg : {false, true}) {
    SCOPED_TRACE(testing::Message() << "smem_agg=" << smem_agg);
    gpusim::Device device;
    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 1; i <= 200; ++i) keys.push_back(i);
    auto d_keys = device.alloc<std::uint64_t>(keys.size());
    device.copy_to_device<std::uint64_t>(keys, d_keys);
    DeviceHashTable table(device, 16, 1.0, smem_agg);  // capacity 16 << 200
    EXPECT_THROW(table.count_kmers(d_keys, keys.size()), SimulationError);
  }
}

}  // namespace
}  // namespace dedukt::core
