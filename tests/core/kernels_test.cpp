#include "dedukt/core/kernels.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "dedukt/io/synthetic.hpp"
#include "dedukt/kmer/extract.hpp"
#include "dedukt/util/rng.hpp"

namespace dedukt::core::kernels {
namespace {

io::ReadBatch small_batch() {
  io::GenomeSpec gspec;
  gspec.length = 4'000;
  gspec.seed = 3;
  io::ReadSpec rspec;
  rspec.coverage = 3.0;
  rspec.mean_read_length = 400;
  rspec.min_read_length = 60;
  return io::generate_dataset(gspec, rspec);
}

TEST(EncodedReadsTest, CountsKmersAndSeparates) {
  io::ReadBatch batch;
  batch.reads.push_back({"a", "ACGTACGT", ""});  // 8 bases
  batch.reads.push_back({"b", "TTTTT", ""});     // 5 bases
  const EncodedReads staged = EncodedReads::build(batch, 5);
  EXPECT_EQ(staged.total_kmers, 4u + 1u);
  EXPECT_EQ(staged.fragments.size(), 2u);
  // Separator between fragments and a k-length pad at the end.
  EXPECT_EQ(staged.bases[8], kSeparator);
  EXPECT_EQ(staged.bases.size(), 8u + 1 + 5 + 1 + 5);
}

TEST(EncodedReadsTest, DropsShortAndSplitsOnN) {
  io::ReadBatch batch;
  batch.reads.push_back({"a", "ACGNNACGTA", ""});  // frags: ACG(3), ACGTA(5)
  const EncodedReads staged = EncodedReads::build(batch, 4);
  ASSERT_EQ(staged.fragments.size(), 1u);  // ACG too short for k=4
  EXPECT_EQ(staged.fragments[0].second, 5u);
  EXPECT_EQ(staged.total_kmers, 2u);
}

TEST(EncodedReadsTest, EmptyBatch) {
  const EncodedReads staged = EncodedReads::build(io::ReadBatch{}, 7);
  EXPECT_EQ(staged.total_kmers, 0u);
  EXPECT_TRUE(staged.fragments.empty());
  EXPECT_EQ(staged.bases.size(), 7u);  // just the pad
}

TEST(WindowsTest, CoverEveryKmerExactlyOnce) {
  const io::ReadBatch batch = small_batch();
  const int k = 17;
  const EncodedReads staged = EncodedReads::build(batch, k);
  for (int window : {1, 7, 15}) {
    const auto windows = build_windows(staged, k, window);
    std::uint64_t covered = 0;
    for (const auto& w : windows) {
      EXPECT_GE(w.kmer_count, 1u);
      EXPECT_LE(w.kmer_count, static_cast<std::uint32_t>(window));
      covered += w.kmer_count;
    }
    EXPECT_EQ(covered, staged.total_kmers);
  }
}

TEST(ParseKernelsTest, TwoPhaseProducesExactKmerMultiset) {
  const io::ReadBatch batch = small_batch();
  const int k = 17;
  const auto enc = io::BaseEncoding::kStandard;
  constexpr std::uint32_t kParts = 5;

  gpusim::Device device;
  const EncodedReads staged = EncodedReads::build(batch, k);
  auto d_bases = device.alloc<char>(staged.bases.size());
  device.copy_to_device<char>(staged.bases, d_bases);

  auto d_counts = device.alloc<std::uint32_t>(kParts, 0u);
  parse_count_kmers(device, d_bases, staged.bases.size(), k, enc, kParts,
                    d_counts);

  std::vector<std::uint32_t> counts(kParts);
  device.copy_to_host(d_counts, std::span<std::uint32_t>(counts));
  const std::uint64_t total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  EXPECT_EQ(total, staged.total_kmers);

  std::vector<std::uint64_t> offsets(kParts);
  std::uint64_t running = 0;
  for (std::uint32_t p = 0; p < kParts; ++p) {
    offsets[p] = running;
    running += counts[p];
  }
  auto d_offsets = device.alloc<std::uint64_t>(kParts);
  device.copy_to_device<std::uint64_t>(offsets, d_offsets);
  auto d_cursors = device.alloc<std::uint32_t>(kParts, 0u);
  auto d_out = device.alloc<std::uint64_t>(total);
  parse_fill_kmers(device, d_bases, staged.bases.size(), k, enc, kParts,
                   d_offsets, d_cursors, d_out);

  // The filled buffer must be the exact k-mer multiset of the input,
  // with every k-mer in its hash-selected partition.
  std::map<std::uint64_t, int> expected;
  for (const auto& read : batch.reads) {
    for (const auto code : kmer::extract_kmers(read.bases, k, enc)) {
      ++expected[code];
    }
  }
  std::map<std::uint64_t, int> actual;
  for (std::uint32_t p = 0; p < kParts; ++p) {
    for (std::uint64_t i = offsets[p]; i < offsets[p] + counts[p]; ++i) {
      ++actual[d_out[i]];
      EXPECT_EQ(kmer::kmer_partition(d_out[i], kParts), p);
    }
  }
  EXPECT_EQ(actual, expected);
}

TEST(SupermerKernelsTest, TwoPhaseMatchesHostBuilder) {
  const io::ReadBatch batch = small_batch();
  kmer::SupermerConfig cfg;  // paper defaults
  constexpr std::uint32_t kParts = 4;

  gpusim::Device device;
  const EncodedReads staged = EncodedReads::build(batch, cfg.k);
  const auto windows = build_windows(staged, cfg.k, cfg.window);
  auto d_bases = device.alloc<char>(staged.bases.size());
  device.copy_to_device<char>(staged.bases, d_bases);
  auto d_windows = device.alloc<Window>(windows.size());
  device.copy_to_device<Window>(windows, d_windows);

  auto d_counts = device.alloc<std::uint32_t>(kParts, 0u);
  supermer_count(device, d_bases, d_windows, windows.size(), cfg, kParts,
                 d_counts);
  std::vector<std::uint32_t> counts(kParts);
  device.copy_to_host(d_counts, std::span<std::uint32_t>(counts));
  const std::uint64_t total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});

  // Host reference: per-destination supermer multisets.
  std::map<std::uint64_t, std::map<std::pair<std::uint64_t, int>, int>>
      expected;
  std::uint64_t expected_total = 0;
  for (const auto& read : batch.reads) {
    for (const auto& d : kmer::build_supermers_read(read.bases, cfg, kParts)) {
      ++expected[d.dest][{d.smer.bases, d.smer.len}];
      ++expected_total;
    }
  }
  EXPECT_EQ(total, expected_total);

  std::vector<std::uint64_t> offsets(kParts);
  std::uint64_t running = 0;
  for (std::uint32_t p = 0; p < kParts; ++p) {
    offsets[p] = running;
    running += counts[p];
  }
  auto d_offsets = device.alloc<std::uint64_t>(kParts);
  device.copy_to_device<std::uint64_t>(offsets, d_offsets);
  auto d_cursors = device.alloc<std::uint32_t>(kParts, 0u);
  auto d_words = device.alloc<std::uint64_t>(total);
  auto d_lens = device.alloc<std::uint8_t>(total);
  supermer_fill(device, d_bases, d_windows, windows.size(), cfg, kParts,
                d_offsets, d_cursors, d_words, d_lens);

  for (std::uint32_t p = 0; p < kParts; ++p) {
    std::map<std::pair<std::uint64_t, int>, int> got;
    for (std::uint64_t i = offsets[p]; i < offsets[p] + counts[p]; ++i) {
      ++got[{d_words[i], d_lens[i]}];
    }
    EXPECT_EQ(got, expected[p]) << "partition " << p;
  }
}

TEST(ParseKernelsTest, TraffickersReportTraffic) {
  const io::ReadBatch batch = small_batch();
  gpusim::Device device;
  const EncodedReads staged = EncodedReads::build(batch, 17);
  auto d_bases = device.alloc<char>(staged.bases.size());
  device.copy_to_device<char>(staged.bases, d_bases);
  auto d_counts = device.alloc<std::uint32_t>(4, 0u);
  const auto stats =
      parse_count_kmers(device, d_bases, staged.bases.size(), 17,
                        io::BaseEncoding::kStandard, 4, d_counts);
  EXPECT_GT(stats.counters.gmem_read_bytes, staged.bases.size());
  EXPECT_EQ(stats.counters.atomics, staged.total_kmers);
  EXPECT_GT(stats.modeled_seconds, 0.0);
}

}  // namespace
}  // namespace dedukt::core::kernels
