#include <gtest/gtest.h>

#include <map>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/synthetic.hpp"

namespace dedukt::core {
namespace {

io::ReadBatch test_reads() {
  io::GenomeSpec gspec;
  gspec.length = 9'000;
  gspec.seed = 71;
  io::ReadSpec rspec;
  rspec.coverage = 3.0;
  rspec.mean_read_length = 500;
  rspec.min_read_length = 120;
  return io::generate_dataset(gspec, rspec);
}

std::map<kmer::WideKey, std::uint64_t> reference_map(
    const io::ReadBatch& reads, const PipelineConfig& config) {
  std::map<kmer::WideKey, std::uint64_t> out;
  reference_count_wide(reads, config)
      .for_each([&](const kmer::WideKey& key, std::uint64_t count) {
        out[key] = count;
      });
  return out;
}

class WidePipelineSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(WidePipelineSweep, CountsMatchWideReference) {
  const auto [k, nranks] = GetParam();
  const io::ReadBatch reads = test_reads();

  DriverOptions options;
  options.pipeline.kind = PipelineKind::kCpu;
  options.pipeline.k = k;
  const int safe_m = 15;
  options.pipeline.m = safe_m;
  options.nranks = nranks;
  const WideCountResult result = run_distributed_count_wide(reads, options);

  const std::map<kmer::WideKey, std::uint64_t> actual(
      result.global_counts.begin(), result.global_counts.end());
  EXPECT_EQ(actual, reference_map(reads, options.pipeline));
  EXPECT_EQ(result.base.totals().kmers_parsed, reads.total_kmers(k));
}

INSTANTIATE_TEST_SUITE_P(KAndRanks, WidePipelineSweep,
                         ::testing::Combine(::testing::Values(33, 41, 63),
                                            ::testing::Values(1, 5)));

TEST(WidePipelineTest, CanonicalWideCounting) {
  const io::ReadBatch reads = test_reads();
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kCpu;
  options.pipeline.k = 41;
  options.pipeline.m = 15;
  options.pipeline.canonical = true;
  options.nranks = 4;
  const WideCountResult result = run_distributed_count_wide(reads, options);
  const std::map<kmer::WideKey, std::uint64_t> actual(
      result.global_counts.begin(), result.global_counts.end());
  EXPECT_EQ(actual, reference_map(reads, options.pipeline));
}

TEST(WidePipelineTest, MultiRoundWideCounting) {
  const io::ReadBatch reads = test_reads();
  DriverOptions single, multi;
  single.pipeline.kind = multi.pipeline.kind = PipelineKind::kCpu;
  single.pipeline.k = multi.pipeline.k = 47;
  single.pipeline.m = multi.pipeline.m = 15;
  single.nranks = multi.nranks = 4;
  multi.pipeline.max_kmers_per_round = 1'000;
  const auto a = run_distributed_count_wide(reads, single);
  const auto b = run_distributed_count_wide(reads, multi);
  EXPECT_EQ(a.global_counts, b.global_counts);
}

TEST(WidePipelineTest, WideBytesDoubleNarrowBytes) {
  // Wide keys ship 16 bytes per k-mer vs 8 — a structural check of the
  // exchange accounting. The narrow run uses k=31, the wide run k=33, so
  // the parsed k-mer totals are within ~1% of each other.
  const io::ReadBatch reads = test_reads();
  DriverOptions narrow;
  narrow.pipeline.kind = PipelineKind::kCpu;
  narrow.pipeline.k = 31;
  narrow.pipeline.m = 7;
  narrow.nranks = 4;
  narrow.collect_counts = false;
  DriverOptions wide = narrow;
  wide.pipeline.k = 33;
  wide.pipeline.m = 15;

  const auto n = run_distributed_count(reads, narrow);
  const auto w = run_distributed_count_wide(reads, wide);
  const double bytes_per_kmer_narrow =
      static_cast<double>(n.totals().bytes_sent) /
      static_cast<double>(n.totals().kmers_parsed);
  const double bytes_per_kmer_wide =
      static_cast<double>(w.base.totals().bytes_sent) /
      static_cast<double>(w.base.totals().kmers_parsed);
  EXPECT_NEAR(bytes_per_kmer_wide / bytes_per_kmer_narrow, 2.0, 0.05);
}

TEST(WidePipelineTest, RejectsNarrowKAndGpuKinds) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kCpu;
  options.pipeline.k = 17;  // narrow k must use the narrow entry point
  EXPECT_THROW(run_distributed_count_wide(test_reads(), options), Error);

  options.pipeline.k = 41;
  options.pipeline.kind = PipelineKind::kGpuKmer;
  EXPECT_THROW(run_distributed_count_wide(test_reads(), options),
               PreconditionError);
}

TEST(WidePipelineTest, NarrowDriverRejectsWideK) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.pipeline.k = 41;
  EXPECT_THROW(run_distributed_count(test_reads(), options),
               PreconditionError);
}

}  // namespace
}  // namespace dedukt::core
