// Hierarchical-exchange parity battery (ctest -L exchange) for
// --hierarchical-exchange (PipelineConfig::hierarchical_exchange): across
// every pipeline and both exchange modes, the two-level exchange must
// produce bit-identical spectra, global counts, and per-rank work ledgers
// to the flat exchange — on a multi-node shape the modeled exchange time
// must strictly drop and the intra/inter byte split must sum to the flat
// path's bytes; on a single-node shape the whole run must be bit-identical
// including modeled times. Also covers the composition with
// --overlap-rounds and the node-aware partition scheme.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/synthetic.hpp"

namespace dedukt::core {
namespace {

io::ReadBatch parity_reads() {
  io::GenomeSpec gspec;
  gspec.length = 5'000;
  gspec.seed = 42;
  io::ReadSpec rspec;
  rspec.coverage = 4.0;
  rspec.mean_read_length = 400;
  rspec.min_read_length = 80;
  rspec.seed = 43;
  return io::generate_dataset(gspec, rspec);
}

void append_work_counts(std::ostringstream& out, const RankMetrics& m) {
  out << " reads=" << m.reads << " bases=" << m.bases
      << " kmers_parsed=" << m.kmers_parsed
      << " supermers_built=" << m.supermers_built
      << " supermer_bases=" << m.supermer_bases
      << " kmers_received=" << m.kmers_received
      << " supermers_received=" << m.supermers_received
      << " bytes_sent=" << m.bytes_sent
      << " bytes_received=" << m.bytes_received
      << " unique=" << m.unique_kmers << " counted=" << m.counted_kmers
      << "\n";
}

struct RunOutcome {
  std::string identity;  ///< spectrum + global counts + work-count fields
  double modeled_total = 0.0;
  double modeled_exchange = 0.0;
  double overlap_saved = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t intra_node_bytes = 0;
  std::uint64_t inter_node_bytes = 0;
};

RunOutcome run_once(const DriverOptions& options, bool wide) {
  RunOutcome outcome;
  std::ostringstream identity;
  const CountResult* base = nullptr;
  CountResult narrow_result;
  WideCountResult wide_result;
  if (wide) {
    wide_result = run_distributed_count_wide(parity_reads(), options);
    base = &wide_result.base;
    std::map<std::uint64_t, std::uint64_t> spectrum;
    for (const auto& [key, count] : wide_result.global_counts) {
      spectrum[count] += 1;
    }
    identity << "spectrum:";
    for (const auto& [m, d] : spectrum) identity << " " << m << ":" << d;
    identity << "\ndistinct=" << wide_result.global_counts.size() << "\n";
  } else {
    narrow_result = run_distributed_count(parity_reads(), options);
    base = &narrow_result;
    identity << "spectrum:";
    for (const auto& [m, d] : narrow_result.spectrum()) {
      identity << " " << m << ":" << d;
    }
    identity << "\ndistinct=" << narrow_result.global_counts.size() << "\n";
    for (const auto& [key, count] : narrow_result.global_counts) {
      identity << key << ":" << count << "\n";
    }
  }
  for (int r = 0; r < base->nranks; ++r) {
    identity << "rank " << r << ":";
    append_work_counts(identity, base->ranks[static_cast<std::size_t>(r)]);
  }
  outcome.identity = identity.str();
  outcome.modeled_total = base->modeled_total_seconds();
  outcome.modeled_exchange = base->modeled_breakdown().get(kPhaseExchange);
  outcome.overlap_saved = base->overlap_saved_seconds();
  const RankMetrics totals = base->totals();
  outcome.bytes_sent = totals.bytes_sent;
  outcome.intra_node_bytes = totals.intra_node_bytes;
  outcome.inter_node_bytes = totals.inter_node_bytes;
  return outcome;
}

struct Scenario {
  const char* name;
  bool wide;
  void (*configure)(DriverOptions&);
};

constexpr Scenario kScenarios[] = {
    {"cpu", false,
     [](DriverOptions& o) { o.pipeline.kind = PipelineKind::kCpu; }},
    {"cpu_wide", true,
     [](DriverOptions& o) {
       o.pipeline.kind = PipelineKind::kCpu;
       o.pipeline.k = 33;
     }},
    {"gpu_kmer", false,
     [](DriverOptions& o) { o.pipeline.kind = PipelineKind::kGpuKmer; }},
    {"gpu_kmer_consolidated", false,
     [](DriverOptions& o) {
       o.pipeline.kind = PipelineKind::kGpuKmer;
       o.pipeline.source_consolidation = true;
     }},
    {"gpu_supermer", false,
     [](DriverOptions& o) { o.pipeline.kind = PipelineKind::kGpuSupermer; }},
    {"gpu_supermer_wide", false,
     [](DriverOptions& o) {
       o.pipeline.kind = PipelineKind::kGpuSupermer;
       o.pipeline.wide_supermers = true;
       o.pipeline.window = 40;
     }},
    {"gpu_supermer_freq", false,
     [](DriverOptions& o) {
       o.pipeline.kind = PipelineKind::kGpuSupermer;
       o.pipeline.partition = PartitionScheme::kFrequencyBalanced;
     }},
};

/// (scenario index, staged exchange).
class HierarchicalParity
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(HierarchicalParity, MultiNodeIdenticalResultsLowerExchange) {
  const auto [scenario_index, staged] = GetParam();
  const Scenario& scenario = kScenarios[scenario_index];

  DriverOptions options;
  scenario.configure(options);
  options.pipeline.exchange =
      staged ? ExchangeMode::kStaged : ExchangeMode::kGpuDirect;
  options.nranks = 12;
  options.ranks_per_node = 6;  // two modeled nodes

  options.pipeline.hierarchical_exchange = false;
  const RunOutcome flat = run_once(options, scenario.wide);
  options.pipeline.hierarchical_exchange = true;
  const RunOutcome hier = run_once(options, scenario.wide);

  // Bit-identical spectra, global counts, and per-rank work ledgers.
  EXPECT_EQ(flat.identity, hier.identity) << scenario.name;

  // The split classifies exactly the flat path's payload bytes.
  EXPECT_EQ(flat.intra_node_bytes, 0u) << scenario.name;
  EXPECT_EQ(flat.inter_node_bytes, 0u) << scenario.name;
  EXPECT_EQ(hier.intra_node_bytes + hier.inter_node_bytes, flat.bytes_sent)
      << scenario.name;
  EXPECT_GT(hier.inter_node_bytes, 0u) << scenario.name;

  // Two modeled nodes: the NIC hop runs at full injection bandwidth, so
  // the modeled exchange must strictly drop.
  EXPECT_LT(hier.modeled_exchange, flat.modeled_exchange) << scenario.name;
  EXPECT_LT(hier.modeled_total, flat.modeled_total) << scenario.name;
}

INSTANTIATE_TEST_SUITE_P(PipelinesModes, HierarchicalParity,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Bool()));

TEST(HierarchicalParity, SingleNodeBitIdenticalIncludingModeledTimes) {
  for (int scenario_index = 0; scenario_index < 7; ++scenario_index) {
    const Scenario& scenario = kScenarios[scenario_index];
    DriverOptions options;
    scenario.configure(options);
    options.nranks = 4;  // one modeled node at 6 ranks/node

    options.pipeline.hierarchical_exchange = false;
    const RunOutcome flat = run_once(options, scenario.wide);
    options.pipeline.hierarchical_exchange = true;
    const RunOutcome hier = run_once(options, scenario.wide);

    EXPECT_EQ(flat.identity, hier.identity) << scenario.name;
    // One node: the hierarchical path delegates to the flat charge.
    EXPECT_EQ(hier.modeled_total, flat.modeled_total) << scenario.name;
    EXPECT_EQ(hier.modeled_exchange, flat.modeled_exchange) << scenario.name;
    EXPECT_EQ(hier.intra_node_bytes, flat.bytes_sent) << scenario.name;
    EXPECT_EQ(hier.inter_node_bytes, 0u) << scenario.name;
  }
}

TEST(HierarchicalParity, ComposesWithOverlapRounds) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.pipeline.max_kmers_per_round = 1'700;  // several rounds
  options.nranks = 12;
  options.ranks_per_node = 6;

  options.pipeline.hierarchical_exchange = true;
  options.pipeline.overlap_rounds = false;
  const RunOutcome lockstep = run_once(options, /*wide=*/false);
  options.pipeline.overlap_rounds = true;
  const RunOutcome overlapped = run_once(options, /*wide=*/false);

  // Identical counts; overlap hides part of the inter-node hop on top of
  // the hierarchical win.
  EXPECT_EQ(lockstep.identity, overlapped.identity);
  EXPECT_EQ(lockstep.intra_node_bytes, overlapped.intra_node_bytes);
  EXPECT_EQ(lockstep.inter_node_bytes, overlapped.inter_node_bytes);
  EXPECT_GT(overlapped.overlap_saved, 0.0);
  EXPECT_LT(overlapped.modeled_total, lockstep.modeled_total);

  // The savings cannot exceed what the inter-node hop costs: the exposed
  // exchange keeps at least the intra-node staging share.
  options.pipeline.overlap_rounds = false;
  options.pipeline.hierarchical_exchange = false;
  const RunOutcome flat = run_once(options, /*wide=*/false);
  EXPECT_LT(lockstep.modeled_exchange, flat.modeled_exchange);
}

TEST(HierarchicalParity, NodeAwarePartitionKeepsSpectrum) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.nranks = 12;
  options.ranks_per_node = 6;
  options.pipeline.partition = PartitionScheme::kMinimizerHash;
  const RunOutcome hash = run_once(options, /*wide=*/false);
  options.pipeline.partition = PartitionScheme::kNodeAware;
  options.pipeline.hierarchical_exchange = true;
  const RunOutcome node_aware = run_once(options, /*wide=*/false);

  // Routing moves k-mers between ranks but never changes what is counted:
  // the global spectrum line (first line of the identity) must agree.
  const std::string hash_spectrum =
      hash.identity.substr(0, hash.identity.find('\n'));
  const std::string node_spectrum =
      node_aware.identity.substr(0, node_aware.identity.find('\n'));
  EXPECT_EQ(hash_spectrum, node_spectrum);
}

}  // namespace
}  // namespace dedukt::core
