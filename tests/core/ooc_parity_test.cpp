// Out-of-core / streamed-ingest parity battery (`ctest -L ooc`).
//
// The streaming refactor's contract: a single-batch stream IS the
// historical in-memory run (bit-identical CountResult, spectra, and trace
// metrics), and every other ingest shape — bounded batches, batch-of-one,
// disk-spilled two-pass — must agree with it on the counting *results*
// (spectra, global counts, and for hash routing the per-rank tallies),
// while only modeled times, footprint ledgers, and the new disk phases may
// differ. The battery drives every pipeline variant through
// {1 batch, bounded batches, batch=1 read} x {spill off, spill on} and
// checks those invariants, plus the out-of-core bookkeeping: spill volume
// symmetry, bounded peak-resident accounting, scratch cleanup, and the
// config validation walls.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "dedukt/core/driver.hpp"
#include "dedukt/core/ooc.hpp"
#include "dedukt/io/read_stream.hpp"
#include "dedukt/io/synthetic.hpp"
#include "dedukt/trace/trace.hpp"
#include "dedukt/util/error.hpp"
#include "dedukt/util/thread_pool.hpp"

namespace dedukt::core {
namespace {

namespace fs = std::filesystem;

io::ReadBatch parity_reads() {
  io::GenomeSpec gspec;
  gspec.length = 4'000;
  gspec.seed = 271;
  io::ReadSpec rspec;
  rspec.coverage = 4.0;
  rspec.mean_read_length = 250;
  rspec.min_read_length = 80;
  rspec.seed = 272;
  return io::generate_dataset(gspec, rspec);
}

std::string spill_root() {
  return ::testing::TempDir() + "dedukt-ooc-parity";
}

// --- deterministic identity rendering ----------------------------------

void append_spectrum(std::ostringstream& out,
                     const std::map<std::uint64_t, std::uint64_t>& spectrum) {
  out << "spectrum:";
  for (const auto& [multiplicity, distinct] : spectrum) {
    out << " " << multiplicity << ":" << distinct;
  }
  out << "\n";
}

/// The global counting outcome: spectrum plus the full (key, count) table.
std::string global_identity(const CountResult& result) {
  std::ostringstream out;
  append_spectrum(out, result.spectrum());
  for (const auto& [key, count] : result.global_counts) {
    out << key << ":" << count << "\n";
  }
  return out.str();
}

std::string global_identity_wide(const WideCountResult& result) {
  std::ostringstream out;
  std::map<std::uint64_t, std::uint64_t> spectrum;
  for (const auto& [key, count] : result.global_counts) spectrum[count] += 1;
  append_spectrum(out, spectrum);
  for (const auto& [key, count] : result.global_counts) {
    out << key.hi << "." << key.lo << ":" << count << "\n";
  }
  return out.str();
}

/// Per-rank table tallies — stable whenever the destination function is a
/// pure hash of the key/minimizer.
std::string rank_identity(const CountResult& result) {
  std::ostringstream out;
  for (int r = 0; r < result.nranks; ++r) {
    const RankMetrics& m = result.ranks[static_cast<std::size_t>(r)];
    out << "rank " << r << ": unique=" << m.unique_kmers
        << " counted=" << m.counted_kmers << "\n";
  }
  return out.str();
}

// --- the scenario matrix ------------------------------------------------

struct Scenario {
  const char* name;
  /// Destinations are a pure key/minimizer hash: per-rank tallies must be
  /// invariant across every ingest shape. Frequency-balanced schemes
  /// re-sample their routing from the first batch, so only the global
  /// outcome is pinned for them.
  bool hash_routing;
  void (*configure)(DriverOptions&);
};

constexpr Scenario kScenarios[] = {
    {"cpu", true,
     [](DriverOptions& o) { o.pipeline.kind = PipelineKind::kCpu; }},
    {"cpu_canonical", true,
     [](DriverOptions& o) {
       o.pipeline.kind = PipelineKind::kCpu;
       o.pipeline.canonical = true;
     }},
    {"gpu_kmer", true,
     [](DriverOptions& o) { o.pipeline.kind = PipelineKind::kGpuKmer; }},
    {"gpu_supermer", true,
     [](DriverOptions& o) { o.pipeline.kind = PipelineKind::kGpuSupermer; }},
    {"gpu_supermer_wide", true,
     [](DriverOptions& o) {
       o.pipeline.kind = PipelineKind::kGpuSupermer;
       o.pipeline.wide_supermers = true;
       o.pipeline.window = 40;
     }},
    {"gpu_supermer_freq", false,
     [](DriverOptions& o) {
       o.pipeline.kind = PipelineKind::kGpuSupermer;
       o.pipeline.partition = PartitionScheme::kFrequencyBalanced;
     }},
};

struct IngestShape {
  const char* name;
  std::uint64_t max_reads;  ///< 0 = unbounded (one batch)
  bool spill;
};

constexpr IngestShape kShapes[] = {
    {"one_batch", 0, false},
    {"bounded_batches", 40, false},
    {"batch_of_one", 1, false},
    {"one_batch_spill", 0, true},
    {"bounded_batches_spill", 40, true},
    {"batch_of_one_spill", 1, true},
};

DriverOptions scenario_options(const Scenario& scenario) {
  DriverOptions options;
  scenario.configure(options);
  options.nranks = 4;
  return options;
}

CountResult run_shape(const Scenario& scenario, const IngestShape& shape) {
  DriverOptions options = scenario_options(scenario);
  options.batch.max_reads = shape.max_reads;
  if (shape.spill) {
    options.ooc.spill_root = spill_root();
    options.ooc.bins = 3;
  }
  return run_distributed_count(parity_reads(), options);
}

class OocParity : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OocParity, EveryIngestShapeMatchesTheInMemoryRun) {
  const auto [scenario_index, shape_index] = GetParam();
  const Scenario& scenario = kScenarios[scenario_index];
  const IngestShape& shape = kShapes[shape_index];

  const CountResult baseline =
      run_shape(scenario, IngestShape{"baseline", 0, false});
  const CountResult shaped = run_shape(scenario, shape);

  EXPECT_EQ(global_identity(baseline), global_identity(shaped))
      << scenario.name << " / " << shape.name;
  if (scenario.hash_routing) {
    EXPECT_EQ(rank_identity(baseline), rank_identity(shaped))
        << scenario.name << " / " << shape.name;
  }

  if (shape.spill) {
    const RankMetrics totals = shaped.totals();
    // Spilled bytes come back exactly once.
    EXPECT_GT(totals.spill_bytes_written, 0u) << scenario.name;
    EXPECT_EQ(totals.spill_bytes_written, totals.spill_bytes_read)
        << scenario.name;
    EXPECT_GT(totals.peak_resident_bytes, 0u) << scenario.name;
    // The two disk phases are priced; the in-memory run never records them.
    EXPECT_GT(shaped.modeled_breakdown().get(kPhaseSpill), 0.0);
    EXPECT_GT(shaped.modeled_breakdown().get(kPhaseReload), 0.0);
    EXPECT_DOUBLE_EQ(baseline.modeled_breakdown().get(kPhaseSpill), 0.0);
    EXPECT_DOUBLE_EQ(baseline.modeled_breakdown().get(kPhaseReload), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ScenariosAndShapes, OocParity,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Range(0, 6)));

// --- wide-k parity ------------------------------------------------------

TEST(OocWideParity, StreamedAndSpilledWideRunsMatchInMemory) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kCpu;
  options.pipeline.k = 33;
  options.pipeline.canonical = true;
  options.nranks = 4;

  const io::ReadBatch reads = parity_reads();
  const WideCountResult baseline = run_distributed_count_wide(reads, options);
  const std::string baseline_identity = global_identity_wide(baseline);
  ASSERT_FALSE(baseline.global_counts.empty());

  options.batch.max_reads = 40;
  const WideCountResult streamed = run_distributed_count_wide(reads, options);
  EXPECT_EQ(baseline_identity, global_identity_wide(streamed));
  EXPECT_EQ(rank_identity(baseline.base), rank_identity(streamed.base));

  options.ooc.spill_root = spill_root();
  options.ooc.bins = 3;
  const WideCountResult spilled = run_distributed_count_wide(reads, options);
  EXPECT_EQ(baseline_identity, global_identity_wide(spilled));
  EXPECT_EQ(rank_identity(baseline.base), rank_identity(spilled.base));
  const RankMetrics totals = spilled.base.totals();
  EXPECT_EQ(totals.spill_bytes_written, totals.spill_bytes_read);
  EXPECT_GT(totals.spill_bytes_written, 0u);
}

// --- single-batch bit-identity ------------------------------------------

TEST(OocBitIdentity, UnboundedStreamIsTheInMemoryRunBitForBit) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.nranks = 4;
  const io::ReadBatch reads = parity_reads();

  auto& session = trace::TraceSession::instance();
  session.reset();
  session.enable("");
  const CountResult via_reads = run_distributed_count(reads, options);
  const std::string json_reads =
      session.metrics().to_json(/*include_wall=*/false);
  session.reset();

  io::VectorBatchStream stream(reads);
  const CountResult via_stream = run_distributed_count(stream, options);
  const std::string json_stream =
      session.metrics().to_json(/*include_wall=*/false);
  session.disable();

  EXPECT_EQ(global_identity(via_reads), global_identity(via_stream));
  EXPECT_EQ(rank_identity(via_reads), rank_identity(via_stream));
  // Full metrics JSON, unscrubbed: modeled times, phase structure, byte
  // counters — a single-batch stream leaves no trace of the streaming
  // machinery (and records no footprint counter).
  EXPECT_EQ(json_reads, json_stream);
  EXPECT_EQ(json_reads.find("peak_resident_bytes"), std::string::npos);
  for (std::size_t i = 0; i < via_reads.ranks.size(); ++i) {
    EXPECT_EQ(via_reads.ranks[i].peak_resident_bytes, 0u);
    EXPECT_DOUBLE_EQ(via_reads.ranks[i].modeled.total(),
                     via_stream.ranks[i].modeled.total());
  }
}

// --- footprint accounting -----------------------------------------------

TEST(OocFootprint, StreamedRunsReportAPeakBoundedByBatchSize) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.nranks = 4;
  const io::ReadBatch reads = parity_reads();

  options.batch.max_reads = 4;
  const CountResult small = run_distributed_count(reads, options);
  options.batch.max_reads = 32;
  const CountResult large = run_distributed_count(reads, options);

  const std::uint64_t small_peak = small.totals().peak_resident_bytes;
  const std::uint64_t large_peak = large.totals().peak_resident_bytes;
  EXPECT_GT(small_peak, 0u);
  EXPECT_GT(large_peak, 0u);
  // Peak residency grows with the batch bound — the knob the out-of-core
  // mode turns to fit a dataset in memory.
  EXPECT_LT(small_peak, large_peak);
}

TEST(OocFootprint, SpillCountersSurfaceInTraceMetrics) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.nranks = 4;
  options.batch.max_reads = 40;
  options.ooc.spill_root = spill_root();
  options.ooc.bins = 3;

  auto& session = trace::TraceSession::instance();
  session.reset();
  session.enable("");
  const CountResult result = run_distributed_count(parity_reads(), options);
  const std::string json = session.metrics().to_json(/*include_wall=*/false);
  session.disable();

  EXPECT_NE(json.find("\"spill_bytes_written\":"), std::string::npos);
  EXPECT_NE(json.find("\"spill_bytes_read\":"), std::string::npos);
  EXPECT_NE(json.find("\"peak_resident_bytes\":"), std::string::npos);
  EXPECT_GT(result.totals().spill_bytes_written, 0u);
}

TEST(OocFootprint, ScratchDirectoryIsRemovedAfterTheRun) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kCpu;
  options.nranks = 2;
  options.ooc.spill_root = spill_root();
  (void)run_distributed_count(parity_reads(), options);
  // The root may remain; every per-run scratch subdirectory must be gone.
  if (fs::exists(options.ooc.spill_root)) {
    EXPECT_TRUE(fs::is_empty(options.ooc.spill_root));
  }
}

// --- degenerate inputs and validation -----------------------------------

TEST(OocDegenerate, EmptyInputCountsNothingInEveryMode) {
  const io::ReadBatch empty;
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.nranks = 3;

  CountResult result = run_distributed_count(empty, options);
  EXPECT_TRUE(result.global_counts.empty());

  options.batch.max_reads = 8;
  result = run_distributed_count(empty, options);
  EXPECT_TRUE(result.global_counts.empty());

  options.ooc.spill_root = spill_root();
  result = run_distributed_count(empty, options);
  EXPECT_TRUE(result.global_counts.empty());
  EXPECT_EQ(result.totals().spill_bytes_written, 0u);
}

TEST(OocDegenerate, SingleRankSpillMatchesInMemory) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.nranks = 1;
  const io::ReadBatch reads = parity_reads();
  const CountResult baseline = run_distributed_count(reads, options);
  options.ooc.spill_root = spill_root();
  options.batch.max_reads = 25;
  const CountResult spilled = run_distributed_count(reads, options);
  EXPECT_EQ(global_identity(baseline), global_identity(spilled));
}

TEST(OocValidation, IncompatibleConfigsAreRejected) {
  const io::ReadBatch reads = parity_reads();
  DriverOptions base;
  base.pipeline.kind = PipelineKind::kGpuSupermer;
  base.nranks = 2;
  base.ooc.spill_root = spill_root();

  DriverOptions options = base;
  options.ooc.bins = 0;
  EXPECT_THROW(run_distributed_count(reads, options), PreconditionError);

  options = base;
  options.pipeline.overlap_rounds = true;
  EXPECT_THROW(run_distributed_count(reads, options), PreconditionError);

  options = base;
  options.pipeline.max_kmers_per_round = 1'000;
  EXPECT_THROW(run_distributed_count(reads, options), PreconditionError);

  options = base;
  options.pipeline.filter_singletons = true;
  EXPECT_THROW(run_distributed_count(reads, options), PreconditionError);

  options = base;
  options.pipeline.kind = PipelineKind::kGpuKmer;
  options.pipeline.source_consolidation = true;
  EXPECT_THROW(run_distributed_count(reads, options), PreconditionError);
}

// --- host-thread invariance ---------------------------------------------

TEST(OocDeterminism, ResultsAreInvariantAcrossSimThreadCounts) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.nranks = 4;
  options.batch.max_reads = 30;
  options.ooc.spill_root = spill_root();
  options.ooc.bins = 3;

  util::ThreadPool::set_global_threads(1);
  const CountResult serial = run_distributed_count(parity_reads(), options);
  util::ThreadPool::set_global_threads(4);
  const CountResult threaded = run_distributed_count(parity_reads(), options);
  util::ThreadPool::set_global_threads(0);  // back to the default

  EXPECT_EQ(global_identity(serial), global_identity(threaded));
  EXPECT_EQ(rank_identity(serial), rank_identity(threaded));
  EXPECT_EQ(serial.totals().spill_bytes_written,
            threaded.totals().spill_bytes_written);
  for (std::size_t r = 0; r < serial.ranks.size(); ++r) {
    EXPECT_DOUBLE_EQ(serial.ranks[r].modeled.total(),
                     threaded.ranks[r].modeled.total());
  }
}

}  // namespace
}  // namespace dedukt::core
