#include "dedukt/core/app.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dedukt/io/fastq.hpp"
#include "dedukt/io/synthetic.hpp"

namespace dedukt::core {
namespace {

struct AppResult {
  int exit_code;
  std::string out;
  std::string err;
};

AppResult run(std::vector<std::string> args) {
  std::vector<const char*> argv = {"dedukt"};
  for (const auto& arg : args) argv.push_back(arg.c_str());
  std::ostringstream out, err;
  const int code =
      run_app(static_cast<int>(argv.size()), argv.data(), out, err);
  return {code, out.str(), err.str()};
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(AppTest, NoArgsPrintsUsageAndFails) {
  const AppResult result = run({});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("usage:"), std::string::npos);
}

TEST(AppTest, HelpSucceeds) {
  const AppResult result = run({"help"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("count"), std::string::npos);
  EXPECT_NE(result.out.find("compare"), std::string::npos);
}

TEST(AppTest, UnknownCommandFails) {
  const AppResult result = run({"frobnicate"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(AppTest, CountSyntheticWritesBinary) {
  const std::string path = temp_path("app_counts.bin");
  const AppResult result = run({"count", "--synthetic=ecoli30x",
                                "--scale=4000", "--ranks=4",
                                "--output=" + path});
  ASSERT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("wrote"), std::string::npos);

  const AppResult info = run({"info", "--counts=" + path});
  ASSERT_EQ(info.exit_code, 0) << info.err;
  EXPECT_NE(info.out.find("k                    : 17"), std::string::npos);
}

TEST(AppTest, CountFromFastqFile) {
  // Write a small FASTQ and count it with the CPU pipeline.
  io::GenomeSpec gspec;
  gspec.length = 3'000;
  io::ReadSpec rspec;
  rspec.coverage = 2.0;
  rspec.mean_read_length = 300;
  rspec.min_read_length = 60;
  const io::ReadBatch reads = io::generate_dataset(gspec, rspec);
  const std::string fastq = temp_path("app_reads.fastq");
  io::write_fastq_file(fastq, reads);

  const std::string counts = temp_path("app_fastq_counts.bin");
  const AppResult result =
      run({"count", "--input=" + fastq, "--pipeline=cpu", "--ranks=3",
           "--k=11", "--output=" + counts});
  ASSERT_EQ(result.exit_code, 0) << result.err;

  const AppResult info = run({"info", "--counts=" + counts});
  EXPECT_NE(info.out.find("k                    : 11"), std::string::npos);
}

TEST(AppTest, CountRequiresInputOrSynthetic) {
  const AppResult result = run({"count"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("--input or --synthetic"), std::string::npos);
}

TEST(AppTest, CountRejectsBadPipeline) {
  const AppResult result =
      run({"count", "--synthetic=ecoli30x", "--pipeline=quantum"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("--pipeline"), std::string::npos);
}

TEST(AppTest, HistoAnalyzesCounts) {
  const std::string path = temp_path("app_histo.bin");
  ASSERT_EQ(run({"count", "--synthetic=ecoli30x", "--scale=4000",
                 "--ranks=4", "--output=" + path})
                .exit_code,
            0);
  const AppResult histo = run({"histo", "--counts=" + path});
  ASSERT_EQ(histo.exit_code, 0) << histo.err;
  EXPECT_NE(histo.out.find("coverage peak"), std::string::npos);
  EXPECT_NE(histo.out.find("genome size estimate"), std::string::npos);
}

TEST(AppTest, DumpProducesTsvRows) {
  const std::string path = temp_path("app_dump.bin");
  ASSERT_EQ(run({"count", "--synthetic=abaumannii30x", "--scale=8000",
                 "--ranks=3", "--output=" + path})
                .exit_code,
            0);
  const AppResult dump = run({"dump", "--counts=" + path});
  ASSERT_EQ(dump.exit_code, 0) << dump.err;
  // Every row is "<17 ACGT chars>\t<count>".
  std::istringstream rows(dump.out);
  std::string line;
  int checked = 0;
  while (std::getline(rows, line) && checked < 50) {
    ASSERT_EQ(line.find('\t'), 17u) << line;
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(AppTest, GraphReportsUnitigs) {
  const std::string path = temp_path("app_graph.bin");
  ASSERT_EQ(run({"count", "--synthetic=ecoli30x", "--scale=8000",
                 "--ranks=3", "--output=" + path})
                .exit_code,
            0);
  const AppResult graph = run({"graph", "--counts=" + path});
  ASSERT_EQ(graph.exit_code, 0) << graph.err;
  EXPECT_NE(graph.out.find("unitig N50"), std::string::npos);
  EXPECT_NE(graph.out.find("nodes"), std::string::npos);
}

TEST(AppTest, GraphMinCountFilters) {
  const std::string path = temp_path("app_graph_filter.bin");
  ASSERT_EQ(run({"count", "--synthetic=ecoli30x", "--scale=8000",
                 "--ranks=3", "--output=" + path})
                .exit_code,
            0);
  const AppResult all = run({"graph", "--counts=" + path});
  const AppResult filtered =
      run({"graph", "--counts=" + path, "--min-count=1000000"});
  ASSERT_EQ(all.exit_code, 0);
  ASSERT_EQ(filtered.exit_code, 0);
  EXPECT_NE(filtered.out.find("nodes                : 0"),
            std::string::npos);  // everything filtered away
}

TEST(AppTest, CompareIdenticalFilesIsJaccardOne) {
  const std::string path = temp_path("app_cmp.bin");
  ASSERT_EQ(run({"count", "--synthetic=vvulnificus30x", "--scale=8000",
                 "--ranks=3", "--output=" + path})
                .exit_code,
            0);
  const AppResult cmp =
      run({"compare", "--a=" + path, "--b=" + path});
  ASSERT_EQ(cmp.exit_code, 0) << cmp.err;
  EXPECT_NE(cmp.out.find("jaccard              : 1.0000"),
            std::string::npos);
  EXPECT_NE(cmp.out.find("bray-curtis          : 0.0000"),
            std::string::npos);
}

TEST(AppTest, CompareRejectsMismatchedK) {
  const std::string a = temp_path("app_cmp_a.bin");
  const std::string b = temp_path("app_cmp_b.bin");
  ASSERT_EQ(run({"count", "--synthetic=ecoli30x", "--scale=8000",
                 "--ranks=2", "--k=17", "--output=" + a})
                .exit_code,
            0);
  // k=21 needs a smaller window to stay within single-word packing.
  ASSERT_EQ(run({"count", "--synthetic=ecoli30x", "--scale=8000",
                 "--ranks=2", "--k=21", "--window=11", "--output=" + b})
                .exit_code,
            0);
  const AppResult cmp = run({"compare", "--a=" + a, "--b=" + b});
  EXPECT_EQ(cmp.exit_code, 1);
  EXPECT_NE(cmp.err.find("different k"), std::string::npos);
}

TEST(AppTest, MissingCountsFileIsRuntimeFailure) {
  const AppResult result =
      run({"info", "--counts=/nonexistent/file.bin"});
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("error:"), std::string::npos);
}

TEST(AppTest, HelpDocumentsStreamingFlags) {
  const AppResult result = run({"help"});
  ASSERT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("--batch-reads"), std::string::npos);
  EXPECT_NE(result.out.find("--batch-bytes"), std::string::npos);
  EXPECT_NE(result.out.find("--ooc-spill"), std::string::npos);
  EXPECT_NE(result.out.find("--ooc-bins"), std::string::npos);
}

TEST(AppTest, BatchedCountMatchesPlainCount) {
  const std::string plain = temp_path("app_plain.bin");
  const std::string batched = temp_path("app_batched.bin");
  ASSERT_EQ(run({"count", "--synthetic=ecoli30x", "--scale=8000",
                 "--ranks=3", "--output=" + plain})
                .exit_code,
            0);
  const AppResult result =
      run({"count", "--synthetic=ecoli30x", "--scale=8000", "--ranks=3",
           "--batch-reads=20", "--output=" + batched});
  ASSERT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("peak resident bytes"), std::string::npos);
  const AppResult cmp = run({"compare", "--a=" + plain, "--b=" + batched});
  ASSERT_EQ(cmp.exit_code, 0) << cmp.err;
  EXPECT_NE(cmp.out.find("jaccard              : 1.0000"),
            std::string::npos);
  EXPECT_NE(cmp.out.find("bray-curtis          : 0.0000"),
            std::string::npos);
}

TEST(AppTest, OutOfCoreCountMatchesPlainCountAndReportsSpill) {
  const std::string plain = temp_path("app_ooc_plain.bin");
  const std::string spilled = temp_path("app_ooc_spilled.bin");
  ASSERT_EQ(run({"count", "--synthetic=ecoli30x", "--scale=8000",
                 "--ranks=3", "--output=" + plain})
                .exit_code,
            0);
  const AppResult result =
      run({"count", "--synthetic=ecoli30x", "--scale=8000", "--ranks=3",
           "--batch-reads=20", "--ooc-spill=" + temp_path("app_ooc_scratch"),
           "--ooc-bins=3", "--output=" + spilled});
  ASSERT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("out-of-core: 3 bins"), std::string::npos);
  EXPECT_NE(result.out.find("spilled"), std::string::npos);
  EXPECT_NE(result.out.find("spill"), std::string::npos);
  EXPECT_NE(result.out.find("reload"), std::string::npos);
  const AppResult cmp = run({"compare", "--a=" + plain, "--b=" + spilled});
  ASSERT_EQ(cmp.exit_code, 0) << cmp.err;
  EXPECT_NE(cmp.out.find("jaccard              : 1.0000"),
            std::string::npos);
}

TEST(AppTest, StreamedFastqInputMatchesLoadedInput) {
  io::GenomeSpec gspec;
  gspec.length = 3'000;
  io::ReadSpec rspec;
  rspec.coverage = 2.0;
  rspec.mean_read_length = 300;
  rspec.min_read_length = 60;
  const io::ReadBatch reads = io::generate_dataset(gspec, rspec);
  const std::string fastq = temp_path("app_streamed.fastq");
  io::write_fastq_file(fastq, reads);

  const std::string loaded = temp_path("app_loaded_counts.bin");
  const std::string streamed = temp_path("app_streamed_counts.bin");
  ASSERT_EQ(run({"count", "--input=" + fastq, "--pipeline=cpu", "--ranks=3",
                 "--k=11", "--output=" + loaded})
                .exit_code,
            0);
  const AppResult result =
      run({"count", "--input=" + fastq, "--pipeline=cpu", "--ranks=3",
           "--k=11", "--batch-reads=8", "--output=" + streamed});
  ASSERT_EQ(result.exit_code, 0) << result.err;
  // Streamed FASTQ ingest decodes incrementally; the banner says so.
  EXPECT_NE(result.out.find("(streamed)"), std::string::npos);
  const AppResult cmp = run({"compare", "--a=" + loaded, "--b=" + streamed});
  EXPECT_NE(cmp.out.find("jaccard              : 1.0000"),
            std::string::npos);
}

TEST(AppTest, OutOfCoreRejectsBadBins) {
  const AppResult result =
      run({"count", "--synthetic=ecoli30x", "--scale=8000", "--ranks=2",
           "--ooc-spill=" + temp_path("app_badbins"), "--ooc-bins=0"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("--ooc-bins"), std::string::npos);
}

TEST(AppTest, CountWithExtensionsEnabled) {
  const std::string path = temp_path("app_ext.bin");
  const AppResult result =
      run({"count", "--synthetic=ecoli30x", "--scale=8000", "--ranks=4",
           "--filter-singletons", "--freq-balanced", "--output=" + path});
  ASSERT_EQ(result.exit_code, 0) << result.err;
  const AppResult info = run({"info", "--counts=" + path});
  EXPECT_EQ(info.exit_code, 0);
}

}  // namespace
}  // namespace dedukt::core
