// Unit tests for the staged pipeline framework in isolation: PhaseScope
// commits exactly what a hand-rolled phase block would (bit-for-bit),
// ExchangePlan moves the same data staged and direct while pricing only the
// staged copies, and RoundRunner's round planning is a collective every
// rank agrees on. The end-to-end bit-identity of whole pipelines built on
// these pieces is covered by pipeline_golden_framework_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dedukt/core/host_hash_table.hpp"
#include "dedukt/core/result.hpp"
#include "dedukt/core/staged_pipeline.hpp"
#include "dedukt/gpusim/device.hpp"
#include "dedukt/io/sequence.hpp"
#include "dedukt/mpisim/runtime.hpp"

namespace dedukt::core {
namespace {

TEST(ExclusivePrefixTest, OffsetsAndTotal) {
  const std::vector<std::uint32_t> counts = {3, 0, 5, 2};
  std::vector<std::uint64_t> offsets;
  EXPECT_EQ(exclusive_prefix(counts, offsets), 10u);
  EXPECT_EQ(offsets, (std::vector<std::uint64_t>{0, 3, 3, 8}));
}

TEST(ExclusivePrefixTest, EmptyCounts) {
  std::vector<std::uint64_t> offsets = {7};  // stale contents must go
  EXPECT_EQ(exclusive_prefix({}, offsets), 0u);
  EXPECT_TRUE(offsets.empty());
}

TEST(AccumulateRoundTest, WorkCountsAndTimesAdd) {
  RankMetrics total;
  RankMetrics round;
  round.reads = 2;
  round.bases = 100;
  round.kmers_parsed = 84;
  round.bytes_sent = 672;
  round.bytes_received = 640;
  round.modeled.add(kPhaseParse, 0.25);
  round.modeled_volume.add(kPhaseParse, 0.125);
  round.modeled_alltoallv_seconds = 0.5;
  round.modeled_alltoallv_volume_seconds = 0.375;

  accumulate_round(total, round);
  accumulate_round(total, round);
  EXPECT_EQ(total.reads, 4u);
  EXPECT_EQ(total.bases, 200u);
  EXPECT_EQ(total.kmers_parsed, 168u);
  EXPECT_EQ(total.bytes_sent, 1344u);
  EXPECT_EQ(total.bytes_received, 1280u);
  EXPECT_EQ(total.modeled.get(kPhaseParse), 0.5);
  EXPECT_EQ(total.modeled_volume.get(kPhaseParse), 0.25);
  EXPECT_EQ(total.modeled_alltoallv_seconds, 1.0);
  EXPECT_EQ(total.modeled_alltoallv_volume_seconds, 0.75);
  // Table-derived fields are NOT accumulated; RoundRunner sets them once.
  EXPECT_EQ(total.unique_kmers, 0u);
}

TEST(PhaseScopeTest, UniformChargeCommitsToBothClocks) {
  RankMetrics metrics;
  {
    PhaseScope phase(metrics, kPhaseParse);
    phase.set_uniform_charge(0.625);
  }
  EXPECT_EQ(metrics.modeled.get(kPhaseParse), 0.625);
  EXPECT_EQ(metrics.modeled_volume.get(kPhaseParse), 0.625);
  EXPECT_GE(metrics.measured.get(kPhaseParse), 0.0);
}

TEST(PhaseScopeTest, UncommittedPhaseChargesZero) {
  RankMetrics metrics;
  { PhaseScope phase(metrics, kPhaseCount); }
  EXPECT_EQ(metrics.modeled.get(kPhaseCount), 0.0);
  EXPECT_EQ(metrics.modeled_volume.get(kPhaseCount), 0.0);
}

/// The device-floor charge must be bit-identical to the hand-rolled block
/// it replaced: max(capture, work) + overhead on the modeled clock,
/// max(volume capture, work) with no overhead on the volume clock.
TEST(PhaseScopeTest, DeviceFloorChargeMatchesHandRolledReference) {
  const std::vector<std::uint64_t> payload(4096, 7);
  const double work = 1e-7;
  const double overhead = 3e-4;

  // Hand-rolled reference, as the pipelines wrote it before the framework.
  gpusim::Device ref_device;
  double ref_modeled = 0.0;
  double ref_volume = 0.0;
  {
    gpusim::DeviceCapture capture(ref_device);
    auto buf = ref_device.alloc<std::uint64_t>(payload.size());
    ref_device.copy_to_device<std::uint64_t>(payload, buf);
    ref_device.free(buf);
    ref_modeled = std::max(capture.modeled_seconds(), work) + overhead;
    ref_volume = std::max(capture.modeled_volume_seconds(), work);
  }

  gpusim::Device device;
  RankMetrics metrics;
  {
    PhaseScope phase(metrics, kPhaseParse, device);
    auto buf = device.alloc<std::uint64_t>(payload.size());
    device.copy_to_device<std::uint64_t>(payload, buf);
    device.free(buf);
    phase.set_device_floor_charge(work, overhead);
  }
  EXPECT_EQ(metrics.modeled.get(kPhaseParse), ref_modeled);
  EXPECT_EQ(metrics.modeled_volume.get(kPhaseParse), ref_volume);
}

/// Staged and direct plans must deliver identical data; only the staged
/// plan prices the D2H/H2D copies, and both report the identical
/// Alltoallv-routine time for identical payloads.
TEST(ExchangePlanTest, StagedAndDirectDeliverIdenticalData) {
  constexpr int kRanks = 4;
  std::vector<std::vector<std::uint64_t>> staged_data(kRanks);
  std::vector<std::vector<std::uint64_t>> direct_data(kRanks);
  std::vector<double> staged_a2a(kRanks), direct_a2a(kRanks);
  std::vector<double> staged_staging(kRanks), direct_staging(kRanks);

  for (const bool staged : {true, false}) {
    mpisim::Runtime runtime(kRanks);
    runtime.run([&](mpisim::Comm& comm) {
      const auto parts = static_cast<std::uint32_t>(comm.size());
      // Rank r sends r*10 + dest, dest+1 times, out of one flat buffer.
      std::vector<std::uint32_t> counts(parts);
      std::vector<std::uint64_t> flat;
      for (std::uint32_t dest = 0; dest < parts; ++dest) {
        counts[dest] = dest + 1;
        for (std::uint32_t i = 0; i <= dest; ++i) {
          flat.push_back(static_cast<std::uint64_t>(comm.rank()) * 10 + dest);
        }
      }
      std::vector<std::uint64_t> offsets;
      const std::uint64_t total = exclusive_prefix(counts, offsets);

      gpusim::Device device;
      auto d_out = device.alloc<std::uint64_t>(total);
      device.copy_to_device<std::uint64_t>(flat, d_out);

      ExchangePlan plan(comm, &device, staged);
      const std::vector<std::uint64_t> host_out =
          plan.stage_out(d_out, total);
      EXPECT_EQ(host_out, flat);
      auto received = plan.exchange(host_out, counts, offsets);
      auto d_recv = plan.stage_in(received.data);
      const auto r = static_cast<std::size_t>(comm.rank());
      // The staged-in device buffer holds the received payload either way.
      (staged ? staged_data : direct_data)[r].assign(
          d_recv.data(), d_recv.data() + received.data.size());
      (staged ? staged_a2a : direct_a2a)[r] = plan.alltoallv_seconds();
      (staged ? staged_staging : direct_staging)[r] =
          plan.staging_seconds();
      device.free(d_recv);
    });
  }

  for (int r = 0; r < kRanks; ++r) {
    const auto i = static_cast<std::size_t>(r);
    EXPECT_EQ(staged_data[i], direct_data[i]) << "rank " << r;
    // Every rank receives r+1 elements from each source, all equal to
    // source*10 + r.
    ASSERT_EQ(staged_data[i].size(),
              static_cast<std::size_t>(kRanks) * (i + 1));
    // Identical payloads -> identical modeled routine time, bit for bit.
    EXPECT_EQ(staged_a2a[i], direct_a2a[i]) << "rank " << r;
    EXPECT_GT(staged_staging[i], 0.0) << "rank " << r;
    EXPECT_EQ(direct_staging[i], 0.0) << "rank " << r;
  }
}

/// commit_exchange must write the exact fields the hand-rolled exchange
/// blocks wrote: assignment (not +=) of byte counts and routine times, and
/// a charge of routine + staging + overhead.
TEST(ExchangePlanTest, CommitExchangeMatchesHandRolledReference) {
  constexpr int kRanks = 3;
  std::vector<RankMetrics> framework(kRanks);
  std::vector<RankMetrics> reference(kRanks);

  const auto payload = [](int rank, int dest) {
    std::vector<std::uint64_t> out(
        static_cast<std::size_t>((rank + 1) * (dest + 2)));
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<std::uint64_t>(rank * 100 + dest * 10) + i;
    }
    return out;
  };
  const double overhead = 2.5e-4;

  {  // Hand-rolled, as gpu_kmer_pipeline.cpp wrote it pre-framework.
    mpisim::Runtime runtime(kRanks);
    runtime.run([&](mpisim::Comm& comm) {
      RankMetrics& metrics = reference[static_cast<std::size_t>(comm.rank())];
      gpusim::Device device;
      std::vector<std::vector<std::uint64_t>> outgoing(kRanks);
      for (int dest = 0; dest < kRanks; ++dest) {
        outgoing[static_cast<std::size_t>(dest)] = payload(comm.rank(), dest);
      }
      trace::ScopedSpan span(trace::kCategoryPhase, kPhaseExchange);
      ScopedPhase wall(metrics.measured, kPhaseExchange);
      gpusim::DeviceCapture device_capture(device);
      mpisim::CommCapture comm_capture(comm);
      auto received = comm.alltoallv(outgoing);
      auto d_recv = device.alloc<std::uint64_t>(received.data.size());
      device.copy_to_device<std::uint64_t>(received.data, d_recv);
      device.free(d_recv);
      metrics.bytes_sent = comm_capture.bytes_sent();
      metrics.bytes_received = comm_capture.bytes_received();
      const double exchange_modeled = comm_capture.modeled_seconds() +
                                      device_capture.modeled_seconds() +
                                      overhead;
      const double exchange_volume =
          comm_capture.modeled_volume_seconds() +
          device_capture.modeled_volume_seconds();
      metrics.modeled.add(kPhaseExchange, exchange_modeled);
      metrics.modeled_volume.add(kPhaseExchange, exchange_volume);
      metrics.modeled_alltoallv_seconds = comm_capture.modeled_seconds();
      metrics.modeled_alltoallv_volume_seconds =
          comm_capture.modeled_volume_seconds();
    });
  }

  {  // The framework spelling of the same phase.
    mpisim::Runtime runtime(kRanks);
    runtime.run([&](mpisim::Comm& comm) {
      RankMetrics& metrics = framework[static_cast<std::size_t>(comm.rank())];
      gpusim::Device device;
      std::vector<std::vector<std::uint64_t>> outgoing(kRanks);
      for (int dest = 0; dest < kRanks; ++dest) {
        outgoing[static_cast<std::size_t>(dest)] = payload(comm.rank(), dest);
      }
      PhaseScope phase(metrics, kPhaseExchange);
      ExchangePlan plan(comm, &device, /*staged=*/true);
      auto received = plan.exchange(outgoing);
      auto d_recv = plan.stage_in(received.data);
      device.free(d_recv);
      phase.commit_exchange(plan, overhead);
    });
  }

  for (int r = 0; r < kRanks; ++r) {
    const auto i = static_cast<std::size_t>(r);
    EXPECT_EQ(framework[i].bytes_sent, reference[i].bytes_sent);
    EXPECT_EQ(framework[i].bytes_received, reference[i].bytes_received);
    EXPECT_EQ(framework[i].modeled.get(kPhaseExchange),
              reference[i].modeled.get(kPhaseExchange));
    EXPECT_EQ(framework[i].modeled_volume.get(kPhaseExchange),
              reference[i].modeled_volume.get(kPhaseExchange));
    EXPECT_EQ(framework[i].modeled_alltoallv_seconds,
              reference[i].modeled_alltoallv_seconds);
    EXPECT_EQ(framework[i].modeled_alltoallv_volume_seconds,
              reference[i].modeled_alltoallv_volume_seconds);
  }
}

io::ReadBatch make_batch(int reads, int bases_per_read) {
  io::ReadBatch batch;
  for (int i = 0; i < reads; ++i) {
    io::Read read;
    read.id = "r" + std::to_string(i);
    read.bases.assign(static_cast<std::size_t>(bases_per_read), 'A');
    batch.reads.push_back(std::move(read));
  }
  return batch;
}

/// Round planning is an allreduce-max: the rank with the most k-mers
/// dictates the round count, and every rank sees the same value.
TEST(RoundRunnerTest, RoundCountIsCollectiveMaximum) {
  constexpr int kRanks = 4;
  mpisim::Runtime runtime(kRanks);
  std::vector<std::uint64_t> rounds(kRanks);
  runtime.run([&](mpisim::Comm& comm) {
    PipelineConfig config;
    config.k = 17;
    config.max_kmers_per_round = 100;
    // Rank 3 holds 10x the data of everyone else.
    const io::ReadBatch reads =
        make_batch(comm.rank() == 3 ? 10 : 1, /*bases_per_read=*/116);
    const RoundRunner runner(comm, reads, config);
    rounds[static_cast<std::size_t>(comm.rank())] = runner.rounds();
  });
  for (int r = 0; r < kRanks; ++r) {
    // Rank 3 parses 10 * (116 - 17 + 1) = 1000 k-mers -> 10 rounds of 100;
    // the collective max binds everyone.
    EXPECT_EQ(rounds[static_cast<std::size_t>(r)], 10u) << "rank " << r;
  }
}

TEST(RoundRunnerTest, UnlimitedMemoryMeansOneRound) {
  mpisim::Runtime runtime(2);
  runtime.run([&](mpisim::Comm& comm) {
    PipelineConfig config;
    config.k = 17;
    config.max_kmers_per_round = 0;
    const io::ReadBatch reads = make_batch(50, 200);
    const RoundRunner runner(comm, reads, config);
    EXPECT_EQ(runner.rounds(), 1u);
  });
}

/// run() feeds every read through run_single exactly once across the
/// rounds, folds the per-round ledgers on top of `setup`, and derives the
/// table totals once at the end.
TEST(RoundRunnerTest, RunAccumulatesRoundsOntoSetup) {
  mpisim::Runtime runtime(1);
  runtime.run([&](mpisim::Comm& comm) {
    PipelineConfig config;
    config.k = 17;
    config.max_kmers_per_round = 150;
    const io::ReadBatch reads = make_batch(4, 166);  // 600 k-mers, 4 rounds
    const RoundRunner runner(comm, reads, config);
    ASSERT_EQ(runner.rounds(), 4u);

    RankMetrics setup;
    setup.modeled.add(kPhaseParse, 1.0);

    HostHashTable table;
    std::uint64_t calls = 0;
    std::uint64_t reads_seen = 0;
    const RankMetrics total = runner.run(
        table,
        [&](const io::ReadBatch& batch) {
          ++calls;
          reads_seen += batch.size();
          table.add(0x2A);  // same key every round
          RankMetrics round;
          round.reads = batch.size();
          round.modeled.add(kPhaseParse, 0.5);
          return round;
        },
        std::move(setup));
    EXPECT_EQ(calls, 4u);
    EXPECT_EQ(reads_seen, reads.size());
    EXPECT_EQ(total.reads, reads.size());
    // setup 1.0 + 4 rounds x 0.5.
    EXPECT_EQ(total.modeled.get(kPhaseParse), 3.0);
    EXPECT_EQ(total.unique_kmers, 1u);
    EXPECT_EQ(total.counted_kmers, 4u);
  });
}

}  // namespace
}  // namespace dedukt::core
