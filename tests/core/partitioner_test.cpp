#include "dedukt/core/partitioner.hpp"

#include <gtest/gtest.h>

#include <map>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/partition.hpp"
#include "dedukt/io/synthetic.hpp"
#include "dedukt/kmer/extract.hpp"
#include "dedukt/mpisim/runtime.hpp"
#include "dedukt/util/stats.hpp"
#include "dedukt/util/thread_pool.hpp"

namespace dedukt::core {
namespace {

TEST(LptAssignTest, BalancesEqualWeights) {
  std::vector<std::uint64_t> weights(12, 10);
  const auto assignment = lpt_assign(weights, 4);
  std::map<std::uint32_t, std::uint64_t> loads;
  for (std::size_t b = 0; b < weights.size(); ++b) {
    loads[assignment[b]] += weights[b];
  }
  ASSERT_EQ(loads.size(), 4u);
  for (const auto& [rank, load] : loads) {
    (void)rank;
    EXPECT_EQ(load, 30u);
  }
}

TEST(LptAssignTest, HeavyBucketsSpreadAcrossRanks) {
  // Three huge buckets among many light ones: LPT must give each heavy
  // bucket its own rank.
  std::vector<std::uint64_t> weights(30, 1);
  weights[0] = weights[1] = weights[2] = 1000;
  const auto assignment = lpt_assign(weights, 3);
  EXPECT_NE(assignment[0], assignment[1]);
  EXPECT_NE(assignment[1], assignment[2]);
  EXPECT_NE(assignment[0], assignment[2]);
}

TEST(LptAssignTest, SingleRankGetsEverything) {
  const auto assignment = lpt_assign({5, 3, 8}, 1);
  for (const auto rank : assignment) EXPECT_EQ(rank, 0u);
}

TEST(LptAssignTest, BeatsHashAssignmentOnSkewedWeights) {
  // Zipf-ish weights: LPT imbalance should be far below the naive
  // round-robin/hash imbalance.
  // Shifted-Zipf weights: skewed but with no single bucket exceeding a
  // rank's ideal share, so LPT can reach near-perfect balance.
  std::vector<std::uint64_t> weights;
  for (int i = 1; i <= 256; ++i) {
    weights.push_back(static_cast<std::uint64_t>(100000.0 / (i + 3)));
  }
  constexpr std::uint32_t kRanks = 8;
  const auto assignment = lpt_assign(weights, kRanks);

  std::vector<std::uint64_t> lpt_loads(kRanks, 0), hash_loads(kRanks, 0);
  for (std::size_t b = 0; b < weights.size(); ++b) {
    lpt_loads[assignment[b]] += weights[b];
    hash_loads[hash::to_partition(hash::hash_u64(b), kRanks)] += weights[b];
  }
  EXPECT_LT(load_imbalance(lpt_loads), 1.02);
  EXPECT_GT(load_imbalance(hash_loads), load_imbalance(lpt_loads));
}

TEST(LptAssignNodeAwareTest, DegeneratesToRankOnlyLptOnFlatTopology) {
  std::vector<std::uint64_t> weights;
  for (int i = 1; i <= 64; ++i) {
    weights.push_back(static_cast<std::uint64_t>(10000.0 / i));
  }
  // One rank per node and one node covering everything are both flat.
  EXPECT_EQ(lpt_assign_node_aware(weights, 8, 1), lpt_assign(weights, 8));
  EXPECT_EQ(lpt_assign_node_aware(weights, 8, 8), lpt_assign(weights, 8));
  EXPECT_EQ(lpt_assign_node_aware(weights, 8, 16), lpt_assign(weights, 8));
}

TEST(LptAssignNodeAwareTest, SpreadsHeavyBucketsAcrossNodes) {
  // Four dominant buckets on 8 ranks / 4 nodes of 2: rank-only LPT gives
  // each heavy bucket its own *rank* (ranks 0..3 = nodes 0 and 1), piling
  // two heavy buckets per node; the node-aware pass gives each its own
  // node.
  std::vector<std::uint64_t> weights(40, 1);
  weights[0] = weights[1] = weights[2] = weights[3] = 1000;
  constexpr std::uint32_t kRanks = 8, kPerNode = 2;
  const std::uint32_t nnodes = kRanks / kPerNode;

  const auto node_loads = [&](const std::vector<std::uint32_t>& assignment) {
    std::vector<std::uint64_t> loads(nnodes, 0);
    for (std::size_t b = 0; b < weights.size(); ++b) {
      loads[assignment[b] / kPerNode] += weights[b];
    }
    return loads;
  };

  const auto rank_only = node_loads(lpt_assign(weights, kRanks));
  const auto node_aware =
      node_loads(lpt_assign_node_aware(weights, kRanks, kPerNode));
  EXPECT_LT(load_imbalance(node_aware), load_imbalance(rank_only));
  // Every node holds exactly one heavy bucket, so no node-level load can
  // reach two heavies' worth.
  for (const auto load : node_aware) EXPECT_LT(load, 2000u);
}

TEST(LptAssignNodeAwareTest, PartialLastNodeGetsProportionalShare) {
  // 5 ranks at 2 per node: nodes of capacity {2, 2, 1}. With uniform
  // weights the half-size node must receive roughly half a full node's
  // load, and within-node LPT must keep the per-rank loads balanced.
  std::vector<std::uint64_t> weights(20, 10);
  const auto assignment = lpt_assign_node_aware(weights, 5, 2);
  std::vector<std::uint64_t> rank_loads(5, 0);
  for (std::size_t b = 0; b < weights.size(); ++b) {
    ASSERT_LT(assignment[b], 5u);
    rank_loads[assignment[b]] += weights[b];
  }
  for (const auto load : rank_loads) EXPECT_EQ(load, 40u);
}

TEST(MinimizerAssignmentTest, RejectsOutOfRangeRanks) {
  EXPECT_THROW(MinimizerAssignment({0, 1, 5}, 4), PreconditionError);
  EXPECT_THROW(MinimizerAssignment({}, 4), PreconditionError);
}

TEST(MinimizerAssignmentTest, RankOfIsStableAndInRange) {
  std::vector<std::uint32_t> table(64);
  for (std::size_t b = 0; b < table.size(); ++b) {
    table[b] = static_cast<std::uint32_t>(b % 4);
  }
  MinimizerAssignment assignment(table, 4);
  for (kmer::KmerCode minimizer = 0; minimizer < 1000; ++minimizer) {
    const auto rank = assignment.rank_of(minimizer);
    EXPECT_LT(rank, 4u);
    EXPECT_EQ(rank, assignment.rank_of(minimizer));
  }
}

class AssignmentBuildTest : public ::testing::Test {
 protected:
  io::ReadBatch reads_ = [] {
    io::GenomeSpec gspec;
    gspec.length = 20'000;
    gspec.seed = 77;
    io::ReadSpec rspec;
    rspec.coverage = 3.0;
    rspec.mean_read_length = 600;
    rspec.min_read_length = 100;
    return io::generate_dataset(gspec, rspec);
  }();
};

TEST_F(AssignmentBuildTest, AllRanksAgreeOnTheTable) {
  constexpr int kRanks = 5;
  const auto batches = io::partition_by_bases(reads_, kRanks);
  std::vector<std::vector<std::uint32_t>> tables(kRanks);
  mpisim::Runtime runtime(kRanks);
  runtime.run([&](mpisim::Comm& comm) {
    const auto assignment = MinimizerAssignment::build(
        comm, batches[static_cast<std::size_t>(comm.rank())],
        kmer::SupermerConfig{});
    tables[static_cast<std::size_t>(comm.rank())] = assignment.table();
  });
  for (int r = 1; r < kRanks; ++r) {
    EXPECT_EQ(tables[static_cast<std::size_t>(r)], tables[0]);
  }
  EXPECT_EQ(tables[0].size(),
            MinimizerAssignment::kBucketsPerRank * kRanks);
}

TEST_F(AssignmentBuildTest, EveryRankOwnsSomeBuckets) {
  constexpr int kRanks = 4;
  const auto batches = io::partition_by_bases(reads_, kRanks);
  mpisim::Runtime runtime(kRanks);
  runtime.run([&](mpisim::Comm& comm) {
    const auto assignment = MinimizerAssignment::build(
        comm, batches[static_cast<std::size_t>(comm.rank())],
        kmer::SupermerConfig{});
    std::vector<bool> owns(kRanks, false);
    for (const auto rank : assignment.table()) {
      owns[rank] = true;
    }
    for (int r = 0; r < kRanks; ++r) EXPECT_TRUE(owns[static_cast<std::size_t>(r)]);
  });
}

TEST_F(AssignmentBuildTest, SampleStrideInvariantOnUniformReads) {
  // Uniform input: every read is identical, so a batch of stride * 2
  // copies sampled at `stride` always yields the same two reads — the
  // reduced weight vector, and therefore the broadcast table, must be
  // bit-identical whatever the stride.
  constexpr int kRanks = 3;
  std::vector<std::vector<std::uint32_t>> tables;
  for (const int stride : {1, 2, 4}) {
    io::ReadBatch uniform;
    uniform.reads.assign(static_cast<std::size_t>(stride) * 2,
                         reads_.reads.front());
    mpisim::Runtime runtime(kRanks);
    std::vector<std::uint32_t> table;
    runtime.run([&](mpisim::Comm& comm) {
      const auto assignment = MinimizerAssignment::build(
          comm, uniform, kmer::SupermerConfig{}, stride);
      if (comm.rank() == 0) table = assignment.table();
    });
    tables.push_back(std::move(table));
  }
  EXPECT_EQ(tables[1], tables[0]) << "stride 2 vs 1";
  EXPECT_EQ(tables[2], tables[0]) << "stride 4 vs 1";
}

TEST_F(AssignmentBuildTest, DeterministicAcrossSimThreads) {
  struct PoolGuard {
    ~PoolGuard() { util::ThreadPool::set_global_threads(1); }
  } guard;
  constexpr int kRanks = 4;
  const auto batches = io::partition_by_bases(reads_, kRanks);
  auto build_at = [&](unsigned threads) {
    util::ThreadPool::set_global_threads(threads);
    std::vector<std::uint32_t> table;
    mpisim::Runtime runtime(kRanks);
    runtime.run([&](mpisim::Comm& comm) {
      const auto assignment = MinimizerAssignment::build(
          comm, batches[static_cast<std::size_t>(comm.rank())],
          kmer::SupermerConfig{});
      if (comm.rank() == 0) table = assignment.table();
    });
    return table;
  };
  const auto sequential = build_at(1);
  EXPECT_EQ(build_at(2), sequential);
  EXPECT_EQ(build_at(8), sequential);
}

TEST_F(AssignmentBuildTest, NodeAwareTableAgreesAcrossRanks) {
  constexpr int kRanks = 6;  // two modeled nodes of 3
  const auto batches = io::partition_by_bases(reads_, kRanks);
  mpisim::NetworkModel network = mpisim::NetworkModel::summit();
  network.ranks_per_node = 3;
  std::vector<std::vector<std::uint32_t>> tables(kRanks);
  mpisim::Runtime runtime(kRanks, network);
  runtime.run([&](mpisim::Comm& comm) {
    const auto assignment = MinimizerAssignment::build(
        comm, batches[static_cast<std::size_t>(comm.rank())],
        kmer::SupermerConfig{}, /*sample_stride=*/4, /*node_aware=*/true);
    tables[static_cast<std::size_t>(comm.rank())] = assignment.table();
  });
  for (int r = 1; r < kRanks; ++r) {
    EXPECT_EQ(tables[static_cast<std::size_t>(r)], tables[0]);
  }
  for (const auto rank : tables[0]) {
    EXPECT_LT(rank, static_cast<std::uint32_t>(kRanks));
  }
}

TEST(FrequencyBalancedPipelineTest, CountsStillMatchReference) {
  io::GenomeSpec gspec;
  gspec.length = 8'000;
  gspec.seed = 21;
  io::ReadSpec rspec;
  rspec.coverage = 4.0;
  rspec.mean_read_length = 500;
  rspec.min_read_length = 80;
  const io::ReadBatch reads = io::generate_dataset(gspec, rspec);

  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.pipeline.partition = PartitionScheme::kFrequencyBalanced;
  options.nranks = 6;
  const CountResult result = run_distributed_count(reads, options);

  std::map<std::uint64_t, std::uint64_t> expected;
  reference_count(reads, options.pipeline)
      .for_each([&](std::uint64_t key, std::uint64_t count) {
        expected[key] = count;
      });
  const std::map<std::uint64_t, std::uint64_t> actual(
      result.global_counts.begin(), result.global_counts.end());
  EXPECT_EQ(actual, expected);
}

TEST(FrequencyBalancedPipelineTest, ImprovesLoadBalanceOnSkewedInput) {
  // Repeat-heavy genome: a few minimizers dominate, which is where the
  // paper's hash routing suffers (Table III) and the §VII extension helps.
  io::GenomeSpec gspec;
  gspec.length = 40'000;
  gspec.seed = 5;
  gspec.repeat_fraction = 0.3;
  gspec.repeat_unit = 800;
  io::ReadSpec rspec;
  rspec.coverage = 4.0;
  rspec.mean_read_length = 800;
  rspec.min_read_length = 100;
  const io::ReadBatch reads = io::generate_dataset(gspec, rspec);

  DriverOptions hash_opts;
  hash_opts.pipeline.kind = PipelineKind::kGpuSupermer;
  hash_opts.nranks = 12;
  hash_opts.collect_counts = false;
  DriverOptions balanced_opts = hash_opts;
  balanced_opts.pipeline.partition = PartitionScheme::kFrequencyBalanced;

  const double hash_imbalance =
      run_distributed_count(reads, hash_opts).load_imbalance();
  const double balanced_imbalance =
      run_distributed_count(reads, balanced_opts).load_imbalance();
  EXPECT_LT(balanced_imbalance, hash_imbalance);
}

TEST(PartitionSchemeTest, ToString) {
  EXPECT_EQ(to_string(PartitionScheme::kMinimizerHash), "minimizer-hash");
  EXPECT_EQ(to_string(PartitionScheme::kFrequencyBalanced), "freq-balanced");
  EXPECT_EQ(to_string(PartitionScheme::kNodeAware), "node-balanced");
}

}  // namespace
}  // namespace dedukt::core
