#include "dedukt/core/summit.hpp"

#include <gtest/gtest.h>

#include "dedukt/util/error.hpp"

namespace dedukt::core::summit {
namespace {

TEST(SummitTest, NodeShapeMatchesPaper) {
  // §V-A: 6 V100s and 42 usable POWER9 cores per node.
  EXPECT_EQ(kGpusPerNode, 6);
  EXPECT_EQ(kCoresPerNode, 42);
}

TEST(SummitTest, NetworkUsesPaperInjectionBandwidth) {
  const auto net = network(kGpusPerNode);
  EXPECT_DOUBLE_EQ(net.node_injection_bw, 23e9);  // §V-A: 23 GB/s per node
  EXPECT_EQ(net.ranks_per_node, 6);
}

TEST(SummitTest, NetworkRejectsBadRanksPerNode) {
  EXPECT_THROW(network(0), PreconditionError);
}

TEST(SummitTest, DeviceIsV100) {
  const auto props = device();
  EXPECT_EQ(props.sms, 80);
  EXPECT_EQ(props.memory_bytes, 16ull << 30);
}

TEST(SummitTest, CalibratedRatesImplyPaperScaleSpeedups) {
  // A Summit node's GPU compute rate vs its CPU compute rate must sit in
  // the regime the paper reports ("an impressive GPU code acceleration of
  // 100x compared to the CPU baseline", §III-C): the effective per-node
  // counting rates differ by two orders of magnitude.
  const double gpu_node_rate = kGpusPerNode * kGpuCountKmersPerSec;
  const double cpu_node_rate = kCoresPerNode * kCpuCountKmersPerSec;
  const double ratio = gpu_node_rate / cpu_node_rate;
  EXPECT_GT(ratio, 50.0);
  EXPECT_LT(ratio, 2000.0);
}

TEST(SummitTest, SupermerOverheadsMatchPaperPercentages) {
  // §V-C: supermer parse costs ~33% more, supermer counting ~27% more.
  EXPECT_NEAR(kSupermerParseOverhead, 1.33, 1e-9);
  EXPECT_NEAR(kSupermerCountOverhead, 1.27, 1e-9);
}

}  // namespace
}  // namespace dedukt::core::summit
