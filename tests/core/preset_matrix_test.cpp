// Integration matrix: every Table-I preset (strongly down-scaled) through
// the default supermer pipeline, verified against the serial reference and
// against the dataset's structural expectations.
#include <gtest/gtest.h>

#include <map>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/datasets.hpp"

namespace dedukt::core {
namespace {

class PresetMatrix : public ::testing::TestWithParam<std::string> {};

TEST_P(PresetMatrix, CountsMatchReferenceOnEveryPreset) {
  const auto preset = io::find_preset(GetParam());
  ASSERT_TRUE(preset.has_value());
  // Strong down-scale so the whole matrix stays fast.
  const std::uint64_t scale = preset->genome_size / 12'000 + 1;
  const io::ReadBatch reads = io::make_dataset(*preset, scale, 7);

  DriverOptions options;
  options.nranks = 5;
  const CountResult result = run_distributed_count(reads, options);

  std::map<std::uint64_t, std::uint64_t> expected;
  reference_count(reads, options.pipeline)
      .for_each([&](std::uint64_t key, std::uint64_t count) {
        expected[key] = count;
      });
  const std::map<std::uint64_t, std::uint64_t> actual(
      result.global_counts.begin(), result.global_counts.end());
  EXPECT_EQ(actual, expected);

  // Coverage structure: total instances per distinct k-mer should be on
  // the order of the dataset's coverage (both strands halve it).
  const double multiplicity =
      static_cast<double>(result.totals().counted_kmers) /
      static_cast<double>(result.total_unique());
  EXPECT_GT(multiplicity, preset->coverage / 5.0);
  EXPECT_LT(multiplicity, preset->coverage * 1.5);

  // The §IV compression must materialize on every dataset.
  const double units_reduction =
      static_cast<double>(result.totals().kmers_parsed) /
      static_cast<double>(result.total_supermers());
  EXPECT_GT(units_reduction, 3.0);
  EXPECT_LT(units_reduction, 5.0);
}

INSTANTIATE_TEST_SUITE_P(AllTable1Presets, PresetMatrix,
                         ::testing::Values("ecoli30x", "paeruginosa30x",
                                           "vvulnificus30x",
                                           "abaumannii30x", "celegans40x",
                                           "hsapiens54x"));

class HeadroomSweep : public ::testing::TestWithParam<double> {};

TEST_P(HeadroomSweep, DeviceTableCorrectAcrossLoadFactors) {
  const double headroom = GetParam();
  const io::ReadBatch reads =
      io::make_dataset(*io::find_preset("ecoli30x"), 4000, 9);
  DriverOptions options;
  options.pipeline.table_headroom = headroom;
  options.nranks = 4;
  const CountResult result = run_distributed_count(reads, options);
  EXPECT_EQ(result.totals().counted_kmers, reads.total_kmers(17));
}

INSTANTIATE_TEST_SUITE_P(Headrooms, HeadroomSweep,
                         ::testing::Values(1.05, 1.5, 2.0, 4.0));

}  // namespace
}  // namespace dedukt::core
