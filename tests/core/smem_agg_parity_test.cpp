// --smem-agg is a pure performance toggle: two-level (shared-memory
// pre-aggregated) counting must produce bit-identical spectra and work
// counts to the per-occurrence path on every pipeline variant, must never
// price the counting kernels higher, and must stay deterministic across
// DEDUKT_SIM_THREADS with aggregation on.
#include "dedukt/core/driver.hpp"

#include <functional>
#include <gtest/gtest.h>

#include "dedukt/io/datasets.hpp"
#include "dedukt/trace/session.hpp"
#include "dedukt/util/thread_pool.hpp"

namespace dedukt::core {
namespace {

struct PoolGuard {
  ~PoolGuard() { util::ThreadPool::set_global_threads(1); }
};

io::ReadBatch preset_reads() {
  return io::make_dataset(*io::find_preset("ecoli30x"), /*scale=*/2000,
                          /*seed=*/7);
}

struct Variant {
  const char* name;
  std::function<void(DriverOptions&)> apply;
};

const Variant kVariants[] = {
    {"gpu-kmer",
     [](DriverOptions& o) { o.pipeline.kind = PipelineKind::kGpuKmer; }},
    {"gpu-kmer-consolidated",
     [](DriverOptions& o) {
       o.pipeline.kind = PipelineKind::kGpuKmer;
       o.pipeline.source_consolidation = true;
     }},
    {"gpu-kmer-filtered",
     [](DriverOptions& o) {
       o.pipeline.kind = PipelineKind::kGpuKmer;
       o.pipeline.filter_singletons = true;
     }},
    {"gpu-supermer",
     [](DriverOptions& o) { o.pipeline.kind = PipelineKind::kGpuSupermer; }},
    {"gpu-supermer-wide",
     [](DriverOptions& o) {
       o.pipeline.kind = PipelineKind::kGpuSupermer;
       o.pipeline.wide_supermers = true;
       o.pipeline.window = 40;
     }},
    {"gpu-supermer-multiround",
     [](DriverOptions& o) {
       o.pipeline.kind = PipelineKind::kGpuSupermer;
       o.pipeline.max_kmers_per_round = 3000;
     }},
};

CountResult run_variant(const io::ReadBatch& reads, const Variant& variant,
                        bool smem_agg) {
  DriverOptions options;
  options.nranks = 4;
  variant.apply(options);
  options.pipeline.smem_agg = smem_agg;
  return run_distributed_count(reads, options);
}

void expect_same_counts(const CountResult& a, const CountResult& b) {
  EXPECT_EQ(a.global_counts, b.global_counts);
  EXPECT_EQ(a.spectrum(), b.spectrum());
  const RankMetrics ta = a.totals();
  const RankMetrics tb = b.totals();
  EXPECT_EQ(ta.kmers_parsed, tb.kmers_parsed);
  EXPECT_EQ(ta.kmers_received, tb.kmers_received);
  EXPECT_EQ(ta.bytes_sent, tb.bytes_sent);
  EXPECT_EQ(ta.unique_kmers, tb.unique_kmers);
  EXPECT_EQ(ta.counted_kmers, tb.counted_kmers);
}

TEST(SmemAggParityTest, SpectraBitIdenticalOnVsOffForEveryPipeline) {
  PoolGuard guard;
  util::ThreadPool::set_global_threads(1);
  const io::ReadBatch reads = preset_reads();
  for (const Variant& variant : kVariants) {
    SCOPED_TRACE(variant.name);
    const CountResult on = run_variant(reads, variant, /*smem_agg=*/true);
    const CountResult off = run_variant(reads, variant, /*smem_agg=*/false);
    EXPECT_GT(on.global_counts.size(), 0u);
    expect_same_counts(on, off);
    // Aggregation moves duplicate traffic from HBM/global atomics onto
    // shared memory; with a real (duplicate-carrying) dataset the counting
    // kernels — and hence the summed modeled time — must get cheaper.
    EXPECT_LE(on.modeled_total_seconds(), off.modeled_total_seconds());
  }
}

TEST(SmemAggParityTest, CountingKernelStrictlyCheaperWithAgg) {
  // The pipeline-level phase charge floors the calibrated throughput term
  // on the device time and the calibrated term dominates at this scale, so
  // the win is asserted where it lives: the counting kernel's modeled
  // seconds, aggregated from the trace.
  PoolGuard guard;
  util::ThreadPool::set_global_threads(1);
  const io::ReadBatch reads = preset_reads();
  const Variant& supermer = kVariants[3];
  ASSERT_STREQ(supermer.name, "gpu-supermer");

  auto count_kernel_seconds = [&](bool smem_agg) {
    trace::TraceSession& session = trace::TraceSession::instance();
    session.enable("");  // in-memory
    session.reset();
    (void)run_variant(reads, supermer, smem_agg);
    const auto kernels = session.metrics().kernel_totals();
    session.disable();
    const auto it = kernels.find("hash_count_supermers");
    EXPECT_NE(it, kernels.end());
    return it == kernels.end() ? 0.0 : it->second.modeled_seconds;
  };

  const double on = count_kernel_seconds(true);
  const double off = count_kernel_seconds(false);
  EXPECT_GT(on, 0.0);
  EXPECT_LT(on, off);
}

TEST(SmemAggParityTest, AggregatedCountingDeterministicAcrossPoolSizes) {
  PoolGuard guard;
  const io::ReadBatch reads = preset_reads();
  for (const Variant* variant : {&kVariants[0], &kVariants[3]}) {
    SCOPED_TRACE(variant->name);
    util::ThreadPool::set_global_threads(1);
    const CountResult sequential =
        run_variant(reads, *variant, /*smem_agg=*/true);
    for (const unsigned threads : {2u, 4u}) {
      SCOPED_TRACE(testing::Message() << "pool size " << threads);
      util::ThreadPool::set_global_threads(threads);
      const CountResult pooled =
          run_variant(reads, *variant, /*smem_agg=*/true);
      expect_same_counts(pooled, sequential);
      // Charges are pool-size invariant, so modeled time is bit-identical.
      EXPECT_EQ(pooled.modeled_total_seconds(),
                sequential.modeled_total_seconds());
    }
  }
}

}  // namespace
}  // namespace dedukt::core
