// Source-side consolidation (paper footnote 1): exchange (k-mer, count)
// pairs after counting locally. Results must be exact; volume behaviour
// must show Georganas' crossover (wins at few ranks, loses at many).
#include <gtest/gtest.h>

#include <map>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/synthetic.hpp"

namespace dedukt::core {
namespace {

io::ReadBatch high_coverage_reads() {
  io::GenomeSpec gspec;
  gspec.length = 3'000;
  gspec.seed = 51;
  io::ReadSpec rspec;
  rspec.coverage = 20.0;  // strong per-rank duplication at small P
  rspec.mean_read_length = 400;
  rspec.min_read_length = 80;
  return io::generate_dataset(gspec, rspec);
}

std::map<std::uint64_t, std::uint64_t> as_map(const CountResult& result) {
  return {result.global_counts.begin(), result.global_counts.end()};
}

class ConsolidationSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConsolidationSweep, CountsMatchReference) {
  const int nranks = GetParam();
  const io::ReadBatch reads = high_coverage_reads();

  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuKmer;
  options.pipeline.source_consolidation = true;
  options.nranks = nranks;
  const CountResult result = run_distributed_count(reads, options);

  std::map<std::uint64_t, std::uint64_t> expected;
  reference_count(reads, options.pipeline)
      .for_each([&](std::uint64_t key, std::uint64_t count) {
        expected[key] = count;
      });
  EXPECT_EQ(as_map(result), expected);
  // Work conservation still holds at the instance level.
  EXPECT_EQ(result.totals().kmers_received,
            result.totals().kmers_parsed);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ConsolidationSweep,
                         ::testing::Values(1, 2, 6, 12));

TEST(ConsolidationTest, WinsAtFewRanksLosesAtMany) {
  // Georganas' destination- vs source-side analysis: with 20x coverage on
  // 2 ranks each rank holds ~10 copies of each k-mer, so pairs (12 B per
  // distinct) beat occurrences (8 B each). At 48 ranks per-rank
  // multiplicity approaches 1 and the 12-vs-8 byte overhead flips the
  // verdict — which is why the paper consolidates at the destination.
  const io::ReadBatch reads = high_coverage_reads();

  auto bytes = [&](int nranks, bool consolidate) {
    DriverOptions options;
    options.pipeline.kind = PipelineKind::kGpuKmer;
    options.pipeline.source_consolidation = consolidate;
    options.nranks = nranks;
    options.collect_counts = false;
    return run_distributed_count(reads, options).total_bytes_exchanged();
  };

  EXPECT_LT(bytes(2, true), bytes(2, false));
  EXPECT_GT(bytes(48, true), bytes(48, false));
}

TEST(ConsolidationTest, RejectsUnsupportedCombos) {
  PipelineConfig config;
  config.source_consolidation = true;
  config.kind = PipelineKind::kGpuSupermer;
  EXPECT_THROW(config.validate(), PreconditionError);
  config.kind = PipelineKind::kGpuKmer;
  config.filter_singletons = true;
  EXPECT_THROW(config.validate(), PreconditionError);
  config.filter_singletons = false;
  EXPECT_NO_THROW(config.validate());
}

TEST(ConsolidationTest, ComposesWithMultiRound) {
  const io::ReadBatch reads = high_coverage_reads();
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuKmer;
  options.pipeline.source_consolidation = true;
  options.pipeline.max_kmers_per_round = 4'000;
  options.nranks = 4;
  const CountResult multi = run_distributed_count(reads, options);

  options.pipeline.max_kmers_per_round = 0;
  const CountResult single = run_distributed_count(reads, options);
  EXPECT_EQ(as_map(multi), as_map(single));
}

}  // namespace
}  // namespace dedukt::core
