#include "dedukt/core/counts_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/synthetic.hpp"
#include "dedukt/util/error.hpp"

namespace dedukt::core {
namespace {

CountsFile sample_file() {
  CountsFile file;
  file.k = 5;
  file.encoding = io::BaseEncoding::kStandard;
  file.counts = {{kmer::pack("AACGT", file.encoding), 3},
                 {kmer::pack("CCCCC", file.encoding), 1},
                 {kmer::pack("TGCAT", file.encoding), 42}};
  return file;
}

TEST(CountsBinaryTest, RoundTrip) {
  const CountsFile original = sample_file();
  std::stringstream buffer;
  write_counts_binary(buffer, original);
  const CountsFile loaded = read_counts_binary(buffer);
  EXPECT_EQ(loaded.k, original.k);
  EXPECT_EQ(loaded.encoding, original.encoding);
  EXPECT_EQ(loaded.counts, original.counts);
}

TEST(CountsBinaryTest, RandomizedEncodingPreserved) {
  CountsFile file;
  file.k = 4;
  file.encoding = io::BaseEncoding::kRandomized;
  file.counts = {{kmer::pack("ACGT", file.encoding), 7}};
  std::stringstream buffer;
  write_counts_binary(buffer, file);
  const CountsFile loaded = read_counts_binary(buffer);
  EXPECT_EQ(loaded.encoding, io::BaseEncoding::kRandomized);
  EXPECT_EQ(kmer::unpack(loaded.counts[0].first, 4, loaded.encoding),
            "ACGT");
}

TEST(CountsBinaryTest, BadMagicRejected) {
  std::stringstream buffer("NOPExxxxxxxxxxxxxxxx");
  EXPECT_THROW(read_counts_binary(buffer), ParseError);
}

TEST(CountsBinaryTest, TruncationRejected) {
  const CountsFile original = sample_file();
  std::stringstream buffer;
  write_counts_binary(buffer, original);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - 5);
  std::stringstream truncated(bytes);
  EXPECT_THROW(read_counts_binary(truncated), ParseError);
}

TEST(CountsBinaryTest, BadKRejected) {
  CountsFile file = sample_file();
  file.k = 99;
  std::stringstream buffer;
  EXPECT_THROW(write_counts_binary(buffer, file), PreconditionError);
}

TEST(CountsTsvTest, RoundTrip) {
  const CountsFile original = sample_file();
  std::stringstream buffer;
  write_counts_tsv(buffer, original);
  const CountsFile loaded = read_counts_tsv(buffer, original.encoding);
  EXPECT_EQ(loaded.k, original.k);
  EXPECT_EQ(loaded.counts, original.counts);
}

TEST(CountsTsvTest, HumanReadableRows) {
  std::stringstream buffer;
  write_counts_tsv(buffer, sample_file());
  EXPECT_NE(buffer.str().find("AACGT\t3"), std::string::npos);
  EXPECT_NE(buffer.str().find("TGCAT\t42"), std::string::npos);
}

TEST(CountsTsvTest, MixedLengthsRejected) {
  std::stringstream buffer("ACG\t1\nACGT\t2\n");
  EXPECT_THROW(read_counts_tsv(buffer, io::BaseEncoding::kStandard),
               ParseError);
}

TEST(CountsTsvTest, MissingTabRejected) {
  std::stringstream buffer("ACGT 7\n");
  EXPECT_THROW(read_counts_tsv(buffer, io::BaseEncoding::kStandard),
               ParseError);
}

TEST(CountsIoTest, PipelineResultRoundTripsThroughDisk) {
  io::GenomeSpec gspec;
  gspec.length = 5'000;
  gspec.seed = 13;
  io::ReadSpec rspec;
  rspec.coverage = 3.0;
  rspec.mean_read_length = 400;
  rspec.min_read_length = 80;
  const io::ReadBatch reads = io::generate_dataset(gspec, rspec);

  DriverOptions options;
  options.nranks = 4;
  const CountResult result = run_distributed_count(reads, options);

  CountsFile file;
  file.k = options.pipeline.k;
  file.encoding = options.pipeline.encoding();
  file.counts = result.global_counts;

  const std::string path = testing::TempDir() + "/dedukt_counts.bin";
  write_counts_binary_file(path, file);
  const CountsFile loaded = read_counts_binary_file(path);
  EXPECT_EQ(loaded.counts, result.global_counts);
  EXPECT_EQ(loaded.k, 17);
}

TEST(CountsIoTest, MissingFileThrows) {
  EXPECT_THROW(read_counts_binary_file("/nonexistent/counts.bin"),
               ParseError);
}

}  // namespace
}  // namespace dedukt::core
