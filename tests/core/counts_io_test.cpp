#include "dedukt/core/counts_io.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/synthetic.hpp"
#include "dedukt/util/error.hpp"

namespace dedukt::core {
namespace {

CountsFile sample_file() {
  CountsFile file;
  file.k = 5;
  file.encoding = io::BaseEncoding::kStandard;
  file.counts = {{kmer::pack("AACGT", file.encoding), 3},
                 {kmer::pack("CCCCC", file.encoding), 1},
                 {kmer::pack("TGCAT", file.encoding), 42}};
  return file;
}

TEST(CountsBinaryTest, RoundTrip) {
  const CountsFile original = sample_file();
  std::stringstream buffer;
  write_counts_binary(buffer, original);
  const CountsFile loaded = read_counts_binary(buffer);
  EXPECT_EQ(loaded.k, original.k);
  EXPECT_EQ(loaded.encoding, original.encoding);
  EXPECT_EQ(loaded.counts, original.counts);
}

TEST(CountsBinaryTest, RandomizedEncodingPreserved) {
  CountsFile file;
  file.k = 4;
  file.encoding = io::BaseEncoding::kRandomized;
  file.counts = {{kmer::pack("ACGT", file.encoding), 7}};
  std::stringstream buffer;
  write_counts_binary(buffer, file);
  const CountsFile loaded = read_counts_binary(buffer);
  EXPECT_EQ(loaded.encoding, io::BaseEncoding::kRandomized);
  EXPECT_EQ(kmer::unpack(loaded.counts[0].first, 4, loaded.encoding),
            "ACGT");
}

TEST(CountsBinaryTest, BadMagicRejected) {
  std::stringstream buffer("NOPExxxxxxxxxxxxxxxx");
  EXPECT_THROW(read_counts_binary(buffer), ParseError);
}

TEST(CountsBinaryTest, TruncationRejected) {
  const CountsFile original = sample_file();
  std::stringstream buffer;
  write_counts_binary(buffer, original);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - 5);
  std::stringstream truncated(bytes);
  EXPECT_THROW(read_counts_binary(truncated), ParseError);
}

TEST(CountsBinaryTest, BadKRejected) {
  CountsFile file = sample_file();
  file.k = 99;
  std::stringstream buffer;
  EXPECT_THROW(write_counts_binary(buffer, file), PreconditionError);
}

TEST(CountsBinaryTest, TruncationAtEveryOffsetRejected) {
  std::stringstream buffer;
  write_counts_binary(buffer, sample_file());
  const std::string bytes = buffer.str();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream truncated(bytes.substr(0, len));
    EXPECT_THROW(read_counts_binary(truncated), ParseError)
        << "at length " << len;
  }
}

TEST(CountsBinaryTest, GarbageEntryCountIsTypedErrorNotBadAlloc) {
  std::stringstream buffer;
  write_counts_binary(buffer, sample_file());
  std::string bytes = buffer.str();
  // entries u64 sits after magic(4) + version/k/encoding u32s.
  const std::uint64_t huge = ~0ull;
  std::memcpy(bytes.data() + 4 + 3 * 4, &huge, sizeof(huge));
  std::stringstream corrupt(bytes);
  EXPECT_THROW(read_counts_binary(corrupt), ParseError);
}

TEST(CountsBinaryTest, KeyWiderThanKRejected) {
  std::stringstream buffer;
  write_counts_binary(buffer, sample_file());
  std::string bytes = buffer.str();
  const std::uint64_t wide = kmer::code_mask(5) + 1;  // 2k+2 bits for k=5
  std::memcpy(bytes.data() + 4 + 3 * 4 + 8, &wide, sizeof(wide));
  std::stringstream corrupt(bytes);
  EXPECT_THROW(read_counts_binary(corrupt), ParseError);
}

TEST(CountsBinaryTest, ZeroCountRejected) {
  std::stringstream buffer;
  write_counts_binary(buffer, sample_file());
  std::string bytes = buffer.str();
  const std::uint64_t zero = 0;
  std::memcpy(bytes.data() + bytes.size() - 8, &zero, sizeof(zero));
  std::stringstream corrupt(bytes);
  EXPECT_THROW(read_counts_binary(corrupt), ParseError);
}

TEST(CountsBinaryTest, NonIncreasingKeysRejected) {
  CountsFile file = sample_file();
  std::swap(file.counts[0], file.counts[1]);  // unsorted on disk
  std::stringstream buffer;
  write_counts_binary(buffer, file);
  EXPECT_THROW(read_counts_binary(buffer), ParseError);

  CountsFile dup = sample_file();
  dup.counts[1] = dup.counts[0];  // duplicate key
  std::stringstream dup_buffer;
  write_counts_binary(dup_buffer, dup);
  EXPECT_THROW(read_counts_binary(dup_buffer), ParseError);
}

TEST(CountsBinaryTest, EveryFlippedByteFailsTypedOrRoundTrips) {
  // Fuzz-ish sweep: any single corrupted byte must either parse (count
  // bytes, say) or raise ParseError — never crash or escape untyped.
  std::stringstream buffer;
  write_counts_binary(buffer, sample_file());
  const std::string bytes = buffer.str();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    std::stringstream in(mutated);
    try {
      (void)read_counts_binary(in);
    } catch (const ParseError&) {
      // typed rejection is the expected outcome for most positions
    }
  }
}

TEST(CountsIoTest, TrailingBytesInFileRejected) {
  const std::string path = testing::TempDir() + "/dedukt_trailing.bin";
  write_counts_binary_file(path, sample_file());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("x", 1);
  }
  EXPECT_THROW(read_counts_binary_file(path), ParseError);
}

TEST(CountsTsvTest, RoundTrip) {
  const CountsFile original = sample_file();
  std::stringstream buffer;
  write_counts_tsv(buffer, original);
  const CountsFile loaded = read_counts_tsv(buffer, original.encoding);
  EXPECT_EQ(loaded.k, original.k);
  EXPECT_EQ(loaded.counts, original.counts);
}

TEST(CountsTsvTest, HumanReadableRows) {
  std::stringstream buffer;
  write_counts_tsv(buffer, sample_file());
  EXPECT_NE(buffer.str().find("AACGT\t3"), std::string::npos);
  EXPECT_NE(buffer.str().find("TGCAT\t42"), std::string::npos);
}

TEST(CountsTsvTest, MixedLengthsRejected) {
  std::stringstream buffer("ACG\t1\nACGT\t2\n");
  EXPECT_THROW(read_counts_tsv(buffer, io::BaseEncoding::kStandard),
               ParseError);
}

TEST(CountsTsvTest, MissingTabRejected) {
  std::stringstream buffer("ACGT 7\n");
  EXPECT_THROW(read_counts_tsv(buffer, io::BaseEncoding::kStandard),
               ParseError);
}

TEST(CountsTsvTest, MalformedCountFieldsRejected) {
  const std::vector<std::string> bad_rows = {
      "ACGT\t\n",                      // empty count
      "ACGT\t7x\n",                    // trailing garbage
      "ACGT\t-1\n",                    // sign not allowed
      "ACGT\t+3\n",                    // sign not allowed
      "ACGT\t 7\n",                    // interior whitespace
      "ACGT\t0\n",                     // zero count
      "ACGT\t18446744073709551616\n",  // UINT64_MAX + 1 overflows
      "ACGT\t99999999999999999999999999\n",
  };
  for (const std::string& row : bad_rows) {
    std::stringstream buffer(row);
    EXPECT_THROW(read_counts_tsv(buffer, io::BaseEncoding::kStandard),
                 ParseError)
        << "row: " << row;
  }
}

TEST(CountsTsvTest, OverlongKmerRejected) {
  std::stringstream buffer(std::string(40, 'A') + "\t1\n");
  EXPECT_THROW(read_counts_tsv(buffer, io::BaseEncoding::kStandard),
               ParseError);
}

TEST(CountsTsvTest, CrlfRowsAccepted) {
  std::stringstream buffer("ACGT\t7\r\nCGTA\t2\r\n");
  const CountsFile loaded =
      read_counts_tsv(buffer, io::BaseEncoding::kStandard);
  ASSERT_EQ(loaded.counts.size(), 2u);
  EXPECT_EQ(loaded.counts[0].second, 7u);
  EXPECT_EQ(loaded.counts[1].second, 2u);
}

TEST(CountsTsvTest, Uint64MaxCountAccepted) {
  std::stringstream buffer("ACGT\t18446744073709551615\n");
  const CountsFile loaded =
      read_counts_tsv(buffer, io::BaseEncoding::kStandard);
  ASSERT_EQ(loaded.counts.size(), 1u);
  EXPECT_EQ(loaded.counts[0].second, UINT64_MAX);
}

TEST(CountsIoTest, PipelineResultRoundTripsThroughDisk) {
  io::GenomeSpec gspec;
  gspec.length = 5'000;
  gspec.seed = 13;
  io::ReadSpec rspec;
  rspec.coverage = 3.0;
  rspec.mean_read_length = 400;
  rspec.min_read_length = 80;
  const io::ReadBatch reads = io::generate_dataset(gspec, rspec);

  DriverOptions options;
  options.nranks = 4;
  const CountResult result = run_distributed_count(reads, options);

  CountsFile file;
  file.k = options.pipeline.k;
  file.encoding = options.pipeline.encoding();
  file.counts = result.global_counts;

  const std::string path = testing::TempDir() + "/dedukt_counts.bin";
  write_counts_binary_file(path, file);
  const CountsFile loaded = read_counts_binary_file(path);
  EXPECT_EQ(loaded.counts, result.global_counts);
  EXPECT_EQ(loaded.k, 17);
}

TEST(CountsIoTest, MissingFileThrows) {
  EXPECT_THROW(read_counts_binary_file("/nonexistent/counts.bin"),
               ParseError);
}

}  // namespace
}  // namespace dedukt::core
