#include "dedukt/core/host_hash_table.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "dedukt/util/rng.hpp"

namespace dedukt::core {
namespace {

TEST(HostHashTableTest, InsertAndIncrement) {
  HostHashTable table;
  table.add(42);
  table.add(42);
  table.add(7);
  EXPECT_EQ(table.count(42), 2u);
  EXPECT_EQ(table.count(7), 1u);
  EXPECT_EQ(table.count(99), 0u);
  EXPECT_EQ(table.unique(), 2u);
  EXPECT_EQ(table.total(), 3u);
}

TEST(HostHashTableTest, AddWithExplicitCount) {
  HostHashTable table;
  table.add(5, 10);
  table.add(5, 3);
  EXPECT_EQ(table.count(5), 13u);
  EXPECT_EQ(table.total(), 13u);
}

TEST(HostHashTableTest, GrowsBeyondInitialCapacity) {
  HostHashTable table(4);
  const std::size_t initial_capacity = table.capacity();
  for (std::uint64_t key = 0; key < 10'000; ++key) table.add(key);
  EXPECT_GT(table.capacity(), initial_capacity);
  EXPECT_EQ(table.unique(), 10'000u);
  for (std::uint64_t key = 0; key < 10'000; ++key) {
    ASSERT_EQ(table.count(key), 1u);
  }
}

TEST(HostHashTableTest, MatchesUnorderedMapUnderRandomWorkload) {
  Xoshiro256 rng(55);
  HostHashTable table;
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  for (int op = 0; op < 50'000; ++op) {
    const std::uint64_t key = rng.below(5'000);  // force collisions
    table.add(key);
    ++oracle[key];
  }
  EXPECT_EQ(table.unique(), oracle.size());
  for (const auto& [key, count] : oracle) {
    ASSERT_EQ(table.count(key), count);
  }
}

TEST(HostHashTableTest, RejectsSentinelKey) {
  HostHashTable table;
  EXPECT_THROW(table.add(kmer::kInvalidCode), PreconditionError);
}

TEST(HostHashTableTest, EntriesSortedIsSortedAndComplete) {
  HostHashTable table;
  for (std::uint64_t key : {9ull, 1ull, 5ull, 1ull}) table.add(key);
  const auto entries = table.entries_sorted();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], (std::pair<std::uint64_t, std::uint64_t>{1, 2}));
  EXPECT_EQ(entries[1], (std::pair<std::uint64_t, std::uint64_t>{5, 1}));
  EXPECT_EQ(entries[2], (std::pair<std::uint64_t, std::uint64_t>{9, 1}));
}

TEST(HostHashTableTest, MergeCombinesCounts) {
  HostHashTable a, b;
  a.add(1, 2);
  a.add(2, 1);
  b.add(2, 5);
  b.add(3, 7);
  a.merge(b);
  EXPECT_EQ(a.count(1), 2u);
  EXPECT_EQ(a.count(2), 6u);
  EXPECT_EQ(a.count(3), 7u);
  EXPECT_EQ(a.total(), 15u);
}

TEST(HostHashTableTest, ForEachVisitsEveryEntryOnce) {
  HostHashTable table;
  for (std::uint64_t key = 100; key < 200; ++key) table.add(key, key);
  std::uint64_t visits = 0, sum = 0;
  table.for_each([&](std::uint64_t key, std::uint64_t count) {
    ++visits;
    EXPECT_EQ(key, count);
    sum += count;
  });
  EXPECT_EQ(visits, 100u);
  EXPECT_EQ(sum, (100 + 199) * 100 / 2);
}

TEST(HostHashTableTest, AdversarialKeysCollidingModCapacity) {
  // Keys spaced by the capacity would all share a slot under a bare modulo;
  // MurmurHash3 probing must keep them distinct and countable.
  HostHashTable table(16);
  const std::size_t cap = table.capacity();
  for (std::uint64_t i = 0; i < 100; ++i) table.add(i * cap);
  EXPECT_EQ(table.unique(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(table.count(i * cap), 1u);
  }
}

}  // namespace
}  // namespace dedukt::core
