// Seeded fuzz: random datasets x random pipeline configurations, all
// verified bit-exact against the serial reference. This is the broad net
// behind the targeted property tests.
#include <gtest/gtest.h>

#include <map>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/synthetic.hpp"
#include "dedukt/util/rng.hpp"

namespace dedukt::core {
namespace {

std::map<std::uint64_t, std::uint64_t> as_map(const CountResult& result) {
  return {result.global_counts.begin(), result.global_counts.end()};
}

class FuzzEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzEquivalence, RandomConfigMatchesReference) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);

  // Random dataset shape.
  io::GenomeSpec gspec;
  gspec.length = 2'000 + rng.below(8'000);
  gspec.replicons = 1 + static_cast<int>(rng.below(3));
  gspec.gc_content = 0.3 + rng.uniform() * 0.4;
  gspec.repeat_fraction = rng.uniform() * 0.2;
  gspec.repeat_unit = 200 + rng.below(800);
  gspec.seed = seed * 3 + 1;
  io::ReadSpec rspec;
  rspec.coverage = 2.0 + rng.uniform() * 4.0;
  rspec.mean_read_length = 200 + static_cast<double>(rng.below(600));
  rspec.min_read_length = 50;
  rspec.error_rate = rng.uniform() * 0.01;
  rspec.seed = seed * 3 + 2;
  const io::ReadBatch reads = io::generate_dataset(gspec, rspec);

  // Random pipeline configuration (always a valid one).
  DriverOptions options;
  const std::uint64_t kind_draw = rng.below(3);
  options.pipeline.kind = kind_draw == 0   ? PipelineKind::kCpu
                          : kind_draw == 1 ? PipelineKind::kGpuKmer
                                           : PipelineKind::kGpuSupermer;
  options.pipeline.k = 5 + static_cast<int>(rng.below(27));  // 5..31
  options.pipeline.m =
      1 + static_cast<int>(rng.below(
              static_cast<std::uint64_t>(options.pipeline.k - 1)));
  if (options.pipeline.kind == PipelineKind::kGpuSupermer) {
    options.pipeline.wide_supermers = rng.below(2) == 1;
    const int cap = (options.pipeline.wide_supermers ? 63 : 31) -
                    options.pipeline.k + 1;
    options.pipeline.window = 1 + static_cast<int>(rng.below(
                                      static_cast<std::uint64_t>(cap)));
    options.pipeline.partition = rng.below(2) == 1
                                     ? PartitionScheme::kFrequencyBalanced
                                     : PartitionScheme::kMinimizerHash;
  }
  const std::uint64_t order_draw = rng.below(3);
  options.pipeline.order =
      order_draw == 0   ? kmer::MinimizerOrder::kLexicographic
      : order_draw == 1 ? kmer::MinimizerOrder::kKmc2
                        : kmer::MinimizerOrder::kRandomized;
  if (options.pipeline.order == kmer::MinimizerOrder::kKmc2) {
    options.pipeline.m = std::max(options.pipeline.m, 3);
    options.pipeline.k = std::max(options.pipeline.k,
                                  options.pipeline.m + 1);
  }
  options.pipeline.canonical =
      options.pipeline.kind == PipelineKind::kCpu && rng.below(2) == 1;
  if (rng.below(3) == 0) {
    options.pipeline.max_kmers_per_round = 500 + rng.below(3'000);
  }
  options.nranks = 1 + static_cast<int>(rng.below(9));
  options.pipeline.exchange = rng.below(2) == 1
                                  ? ExchangeMode::kGpuDirect
                                  : ExchangeMode::kStaged;

  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " kind=" + to_string(options.pipeline.kind) +
               " k=" + std::to_string(options.pipeline.k) +
               " m=" + std::to_string(options.pipeline.m) +
               " window=" + std::to_string(options.pipeline.window) +
               " wide=" + std::to_string(options.pipeline.wide_supermers) +
               " ranks=" + std::to_string(options.nranks));

  const CountResult result = run_distributed_count(reads, options);

  std::map<std::uint64_t, std::uint64_t> expected;
  reference_count(reads, options.pipeline)
      .for_each([&](std::uint64_t key, std::uint64_t count) {
        expected[key] = count;
      });
  ASSERT_EQ(as_map(result), expected);

  // Conservation invariants hold regardless of configuration.
  const RankMetrics totals = result.totals();
  EXPECT_EQ(totals.kmers_parsed, reads.total_kmers(options.pipeline.k));
  EXPECT_EQ(totals.bytes_sent, totals.bytes_received);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         ::testing::Range<std::uint64_t>(1, 25));

class WideFuzzEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(WideFuzzEquivalence, RandomWideConfigMatchesReference) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed * 7 + 1);

  io::GenomeSpec gspec;
  gspec.length = 3'000 + rng.below(6'000);
  gspec.gc_content = 0.35 + rng.uniform() * 0.3;
  gspec.seed = seed * 5 + 3;
  io::ReadSpec rspec;
  rspec.coverage = 2.0 + rng.uniform() * 3.0;
  rspec.mean_read_length = 300 + static_cast<double>(rng.below(500));
  rspec.min_read_length = 100;
  rspec.seed = seed * 5 + 4;
  const io::ReadBatch reads = io::generate_dataset(gspec, rspec);

  DriverOptions options;
  options.pipeline.kind = PipelineKind::kCpu;
  options.pipeline.k = 32 + static_cast<int>(rng.below(32));  // 32..63
  options.pipeline.m = 5 + static_cast<int>(rng.below(20));
  options.pipeline.canonical = rng.below(2) == 1;
  options.nranks = 1 + static_cast<int>(rng.below(7));
  if (rng.below(2) == 0) {
    options.pipeline.max_kmers_per_round = 400 + rng.below(2'000);
  }

  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " k=" + std::to_string(options.pipeline.k) +
               " ranks=" + std::to_string(options.nranks));

  const WideCountResult result =
      run_distributed_count_wide(reads, options);
  std::map<kmer::WideKey, std::uint64_t> expected;
  reference_count_wide(reads, options.pipeline)
      .for_each([&](const kmer::WideKey& key, std::uint64_t count) {
        expected[key] = count;
      });
  const std::map<kmer::WideKey, std::uint64_t> actual(
      result.global_counts.begin(), result.global_counts.end());
  ASSERT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WideFuzzEquivalence,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(DeterminismTest, IdenticalRunsProduceIdenticalResults) {
  io::GenomeSpec gspec;
  gspec.length = 6'000;
  gspec.seed = 101;
  io::ReadSpec rspec;
  rspec.coverage = 4.0;
  rspec.mean_read_length = 400;
  rspec.min_read_length = 80;
  const io::ReadBatch reads = io::generate_dataset(gspec, rspec);

  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.nranks = 6;
  const CountResult a = run_distributed_count(reads, options);
  const CountResult b = run_distributed_count(reads, options);

  EXPECT_EQ(a.global_counts, b.global_counts);
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    // Work counts, traffic, and modeled times are all deterministic even
    // though the ranks are scheduled by the OS.
    EXPECT_EQ(a.ranks[r].kmers_parsed, b.ranks[r].kmers_parsed);
    EXPECT_EQ(a.ranks[r].supermers_built, b.ranks[r].supermers_built);
    EXPECT_EQ(a.ranks[r].bytes_sent, b.ranks[r].bytes_sent);
    EXPECT_EQ(a.ranks[r].counted_kmers, b.ranks[r].counted_kmers);
    EXPECT_DOUBLE_EQ(a.ranks[r].modeled.total(),
                     b.ranks[r].modeled.total());
  }
}

}  // namespace
}  // namespace dedukt::core
