#include "dedukt/core/config.hpp"

#include <gtest/gtest.h>

namespace dedukt::core {
namespace {

TEST(ConfigTest, DefaultsAreThePaperOperatingPoint) {
  PipelineConfig config;
  EXPECT_EQ(config.kind, PipelineKind::kGpuSupermer);
  EXPECT_EQ(config.k, 17);
  EXPECT_EQ(config.m, 7);
  EXPECT_EQ(config.window, 15);
  EXPECT_EQ(config.order, kmer::MinimizerOrder::kRandomized);
  EXPECT_EQ(config.exchange, ExchangeMode::kStaged);
  EXPECT_FALSE(config.canonical);
  EXPECT_NO_THROW(config.validate());
}

TEST(ConfigTest, EncodingFollowsMinimizerOrder) {
  PipelineConfig config;
  config.order = kmer::MinimizerOrder::kRandomized;
  EXPECT_EQ(config.encoding(), io::BaseEncoding::kRandomized);
  config.order = kmer::MinimizerOrder::kLexicographic;
  EXPECT_EQ(config.encoding(), io::BaseEncoding::kStandard);
}

TEST(ConfigTest, SupermerConfigMirrorsFields) {
  PipelineConfig config;
  config.k = 11;
  config.m = 5;
  config.window = 9;
  const kmer::SupermerConfig sc = config.supermer_config();
  EXPECT_EQ(sc.k, 11);
  EXPECT_EQ(sc.m, 5);
  EXPECT_EQ(sc.window, 9);
}

TEST(ConfigTest, SupermerKindValidatesWindowPacking) {
  PipelineConfig config;
  config.kind = PipelineKind::kGpuSupermer;
  config.window = 16;  // 17+16-1 = 32 > 31 packable bases
  EXPECT_THROW(config.validate(), PreconditionError);
}

TEST(ConfigTest, KmerKindIgnoresWindow) {
  PipelineConfig config;
  config.kind = PipelineKind::kGpuKmer;
  config.window = 100;  // irrelevant for the k-mer pipeline
  EXPECT_NO_THROW(config.validate());
}

TEST(ConfigTest, CanonicalOnlyOnCpu) {
  PipelineConfig config;
  config.canonical = true;
  config.kind = PipelineKind::kGpuKmer;
  EXPECT_THROW(config.validate(), PreconditionError);
  config.kind = PipelineKind::kCpu;
  EXPECT_NO_THROW(config.validate());
}

TEST(ConfigTest, ToStringNames) {
  EXPECT_EQ(to_string(PipelineKind::kCpu), "cpu");
  EXPECT_EQ(to_string(PipelineKind::kGpuKmer), "gpu-kmer");
  EXPECT_EQ(to_string(PipelineKind::kGpuSupermer), "gpu-supermer");
  EXPECT_EQ(to_string(ExchangeMode::kStaged), "staged");
  EXPECT_EQ(to_string(ExchangeMode::kGpuDirect), "gpudirect");
}

TEST(ConfigTest, RejectsBadTableHeadroom) {
  PipelineConfig config;
  config.table_headroom = 0.5;
  EXPECT_THROW(config.validate(), PreconditionError);
}

}  // namespace
}  // namespace dedukt::core
