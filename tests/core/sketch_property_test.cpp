// Count-min sketch property battery (ctest -L sketch).
//
// The sketch's guarantees are probabilistic, so these tests are
// property-based: seeded deterministic generators drive >= 1000 trials per
// claim and the claims are asserted exactly (the seeds are fixed, so a
// failure is reproducible, not flaky).
//
//  * one-sidedness: estimate >= true count, always, both disciplines;
//  * the classic (eps, delta) bound at three (width, depth) points:
//    estimate <= true + eps*N fails with rate <= delta = e^-depth for
//    eps = e/width over a stream of length N;
//  * conservative update <= vanilla, cell-for-cell;
//  * merge(A, B) of vanilla sketches is bit-identical to sketching the
//    concatenated stream;
//  * the device kernels match the host reference cell-for-cell (vanilla
//    via the commutative smem-aggregated kernel, conservative via the
//    order-pinned kernel) at any DEDUKT_SIM_THREADS pool size.
#include "dedukt/core/sketch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "dedukt/util/rng.hpp"
#include "dedukt/util/thread_pool.hpp"

namespace dedukt::core {
namespace {

struct PoolGuard {
  ~PoolGuard() { util::ThreadPool::set_global_threads(1); }
};

/// One random stream: `n` occurrences drawn from a `domain`-key universe.
std::vector<std::uint64_t> random_stream(Xoshiro256& rng, std::size_t n,
                                         std::uint64_t domain) {
  // A per-stream random base spreads the universe across u64 space so
  // different trials exercise different hash cells.
  const std::uint64_t base = rng();
  std::vector<std::uint64_t> stream;
  stream.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stream.push_back(base + rng.below(domain) * 0x9E3779B97F4A7C15ull);
  }
  return stream;
}

std::map<std::uint64_t, std::uint64_t> true_counts(
    const std::vector<std::uint64_t>& stream) {
  std::map<std::uint64_t, std::uint64_t> counts;
  for (const std::uint64_t key : stream) ++counts[key];
  return counts;
}

HostCountMinSketch sketch_stream(const std::vector<std::uint64_t>& stream,
                                 SketchParams params) {
  HostCountMinSketch sketch(params);
  for (const std::uint64_t key : stream) sketch.update(key);
  return sketch;
}

TEST(SketchPropertyTest, EstimateNeverUndercounts) {
  // 1200 trials, both disciplines, every distinct key checked. The
  // one-sided guarantee is absolute, not probabilistic: zero violations.
  Xoshiro256 rng(101);
  for (int trial = 0; trial < 1200; ++trial) {
    SketchParams params;
    params.width = 16u << rng.below(3);  // 16, 32 or 64: heavy collisions
    params.depth = 1 + static_cast<std::uint32_t>(rng.below(4));
    params.conservative = (trial % 2) == 1;
    const auto stream = random_stream(rng, 256, 128);
    const HostCountMinSketch sketch = sketch_stream(stream, params);
    for (const auto& [key, count] : true_counts(stream)) {
      ASSERT_GE(sketch.estimate(key), count)
          << "trial " << trial << " undercounted key " << key;
    }
  }
}

TEST(SketchPropertyTest, ErrorBoundHoldsAtThreeShapes) {
  // P[estimate > true + (e/width)*N] <= e^-depth. Fixed seeds make the
  // observed failure count deterministic; the bound is loose in practice,
  // so asserting <= delta * trials exactly is robust, not flaky.
  struct Shape {
    std::uint32_t width, depth;
  };
  const Shape shapes[] = {{64, 2}, {128, 3}, {256, 4}};
  constexpr int kTrials = 1200;
  constexpr std::size_t kStream = 1024;
  for (const Shape& shape : shapes) {
    SCOPED_TRACE(testing::Message()
                 << "width " << shape.width << " depth " << shape.depth);
    const double eps = std::exp(1.0) / shape.width;
    const double delta = std::exp(-static_cast<double>(shape.depth));
    const auto budget =
        static_cast<std::uint64_t>(eps * static_cast<double>(kStream));
    Xoshiro256 rng(2000 + shape.width);
    int failures = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      SketchParams params;
      params.width = shape.width;
      params.depth = shape.depth;
      const auto stream = random_stream(rng, kStream, 4096);
      const HostCountMinSketch sketch = sketch_stream(stream, params);
      // Query one random key from the stream (the bound is per-query).
      const std::uint64_t probe = stream[rng.below(stream.size())];
      const std::uint64_t truth = true_counts(stream).at(probe);
      if (sketch.estimate(probe) > truth + budget) ++failures;
    }
    EXPECT_LE(failures, static_cast<int>(delta * kTrials))
        << failures << " of " << kTrials << " trials broke the bound";
  }
}

TEST(SketchPropertyTest, ConservativeNeverExceedsVanilla) {
  // Conservative update raises only minimum cells, so by induction every
  // cell is <= its vanilla counterpart after any common stream.
  Xoshiro256 rng(303);
  for (int trial = 0; trial < 200; ++trial) {
    SketchParams vanilla_params;
    vanilla_params.width = 64;
    vanilla_params.depth = 3;
    SketchParams cu_params = vanilla_params;
    cu_params.conservative = true;
    const auto stream = random_stream(rng, 512, 256);
    const HostCountMinSketch vanilla = sketch_stream(stream, vanilla_params);
    const HostCountMinSketch cu = sketch_stream(stream, cu_params);
    for (std::size_t i = 0; i < vanilla.cells().size(); ++i) {
      ASSERT_LE(cu.cells()[i], vanilla.cells()[i])
          << "trial " << trial << " cell " << i;
    }
    // And the tighter estimates are still one-sided (checked en masse in
    // EstimateNeverUndercounts; spot-check the coupling here).
    for (const auto& [key, count] : true_counts(stream)) {
      ASSERT_GE(cu.estimate(key), count);
      ASSERT_LE(cu.estimate(key), vanilla.estimate(key));
    }
  }
}

TEST(SketchPropertyTest, MergeEqualsConcatenatedStream) {
  // Vanilla cells are a pure function of the input multiset, so cell-wise
  // summing per-part sketches must be BIT-identical to one sketch of the
  // whole stream — the property the distributed allreduce merge rests on.
  Xoshiro256 rng(404);
  for (int trial = 0; trial < 100; ++trial) {
    SketchParams params;
    params.width = 128;
    params.depth = 4;
    const auto stream = random_stream(rng, 1024, 512);
    const std::size_t cut = rng.below(stream.size());
    const std::vector<std::uint64_t> left(stream.begin(),
                                          stream.begin() + cut);
    const std::vector<std::uint64_t> right(stream.begin() + cut,
                                           stream.end());
    HostCountMinSketch merged = sketch_stream(left, params);
    merged.merge(sketch_stream(right, params));
    const HostCountMinSketch whole = sketch_stream(stream, params);
    ASSERT_EQ(merged.cells(), whole.cells()) << "trial " << trial;
    ASSERT_EQ(merged.total_updates(), whole.total_updates());
  }
}

TEST(SketchPropertyTest, MergeRejectsShapeMismatch) {
  SketchParams a;
  a.width = 64;
  SketchParams b;
  b.width = 128;
  HostCountMinSketch left(a);
  EXPECT_THROW(left.merge(HostCountMinSketch(b)), PreconditionError);
}

TEST(SketchPropertyTest, ParamsValidateShape) {
  SketchParams params;
  params.width = 48;  // not a power of two
  EXPECT_THROW(params.validate(), PreconditionError);
  params.width = 8;  // too small
  EXPECT_THROW(params.validate(), PreconditionError);
  params.width = 64;
  params.depth = 0;
  EXPECT_THROW(params.validate(), PreconditionError);
  params.depth = 13;
  EXPECT_THROW(params.validate(), PreconditionError);
  params.depth = 4;
  EXPECT_NO_THROW(params.validate());
}

std::vector<std::uint32_t> device_update_cells(
    const std::vector<std::uint64_t>& stream, SketchParams params) {
  gpusim::Device device;
  auto d_keys = device.alloc<std::uint64_t>(stream.size());
  device.copy_to_device<std::uint64_t>(stream, d_keys);
  DeviceCountMinSketch sketch(device, params);
  sketch.update(d_keys, stream.size());
  device.free(d_keys);
  return sketch.to_host();
}

TEST(SketchPropertyTest, VanillaKernelMatchesHostCellForCell) {
  // The smem-aggregated kernel ends in commutative global adds, so its
  // cells must equal the host reference exactly — including streams that
  // overflow the shared table's probe bound.
  Xoshiro256 rng(505);
  for (int trial = 0; trial < 20; ++trial) {
    SketchParams params;
    params.width = 256;
    params.depth = 4;
    // Alternate skewed (few hot keys — smem aggregation dominant) and wide
    // (many keys — probe-overflow fallback exercised) streams.
    const std::uint64_t domain = (trial % 2) == 0 ? 16 : 40000;
    const auto stream = random_stream(rng, 8192, domain);
    EXPECT_EQ(device_update_cells(stream, params),
              sketch_stream(stream, params).cells())
        << "trial " << trial;
  }
}

TEST(SketchPropertyTest, ConservativeKernelMatchesHostCellForCell) {
  // launch_ordered pins the conservative kernel to input order, making it
  // bit-identical to the sequential host reference.
  Xoshiro256 rng(606);
  for (int trial = 0; trial < 10; ++trial) {
    SketchParams params;
    params.width = 128;
    params.depth = 3;
    params.conservative = true;
    const auto stream = random_stream(rng, 4096, 64);
    EXPECT_EQ(device_update_cells(stream, params),
              sketch_stream(stream, params).cells())
        << "trial " << trial;
  }
}

TEST(SketchPropertyTest, KernelsDeterministicAcrossPoolSizes) {
  // DEDUKT_SIM_THREADS must not change a single cell, for either kernel.
  PoolGuard guard;
  Xoshiro256 rng(707);
  const auto stream = random_stream(rng, 16384, 512);
  for (const bool conservative : {false, true}) {
    SketchParams params;
    params.width = 256;
    params.depth = 4;
    params.conservative = conservative;
    util::ThreadPool::set_global_threads(1);
    const auto sequential = device_update_cells(stream, params);
    util::ThreadPool::set_global_threads(4);
    EXPECT_EQ(device_update_cells(stream, params), sequential)
        << (conservative ? "conservative" : "vanilla");
  }
}

TEST(SketchPropertyTest, EstimateKernelMatchesHost) {
  Xoshiro256 rng(808);
  SketchParams params;
  params.width = 256;
  params.depth = 4;
  const auto stream = random_stream(rng, 8192, 1024);
  const HostCountMinSketch host = sketch_stream(stream, params);

  std::vector<std::uint64_t> queries = random_stream(rng, 1000, 2048);
  gpusim::Device device;
  auto d_keys = device.alloc<std::uint64_t>(queries.size());
  device.copy_to_device<std::uint64_t>(queries, d_keys);
  DeviceCountMinSketch sketch(device, params);
  sketch.load(host.cells());
  auto d_out = device.alloc<std::uint32_t>(queries.size());
  sketch.estimate(d_keys, queries.size(), d_out);
  std::vector<std::uint32_t> estimates(queries.size());
  device.copy_to_host(d_out, std::span<std::uint32_t>(estimates));
  device.free(d_keys);
  device.free(d_out);
  sketch.release();

  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(estimates[i], host.estimate(queries[i])) << "query " << i;
  }
}

}  // namespace
}  // namespace dedukt::core
