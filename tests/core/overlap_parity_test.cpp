// Overlap-parity battery for --overlap-rounds (PipelineConfig::
// overlap_rounds): for every pipeline, across both exchange modes and
// several multi-round shapes, the overlapped schedule must produce
// bit-identical spectra, global counts, and per-rank work counts to the
// lockstep schedule — only modeled times may move, and only downward. The
// trace metrics JSON is compared after scrubbing exactly the fields the
// overlap is allowed to change (modeled seconds, span counts, and the
// overlap_saved_seconds fields it introduces); everything else — kernels,
// byte counters, phase structure — must match byte for byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/synthetic.hpp"
#include "dedukt/trace/trace.hpp"

namespace dedukt::core {
namespace {

io::ReadBatch parity_reads() {
  io::GenomeSpec gspec;
  gspec.length = 5'000;
  gspec.seed = 42;
  io::ReadSpec rspec;
  rspec.coverage = 4.0;
  rspec.mean_read_length = 400;
  rspec.min_read_length = 80;
  rspec.seed = 43;
  return io::generate_dataset(gspec, rspec);
}

// --- metrics-JSON scrubbing -------------------------------------------
// The overlapped run is allowed to differ from lockstep only in modeled
// times, span counts (the exchange phase splits into post + wait spans),
// and the overlap_saved_seconds fields it adds. Scrub those; compare the
// rest byte for byte.

/// Replace the numeric value following every occurrence of `key` with X.
void scrub_value(std::string& json, const std::string& key) {
  std::size_t pos = 0;
  while ((pos = json.find(key, pos)) != std::string::npos) {
    const std::size_t vstart = pos + key.size();
    std::size_t vend = vstart;
    while (vend < json.size() && json[vend] != ',' && json[vend] != '}' &&
           json[vend] != '\n') {
      ++vend;
    }
    json.replace(vstart, vend - vstart, "X");
    pos = vstart;
  }
}

/// Remove `,<ws>"key":value` entirely (the key is only emitted on
/// overlapped runs, so the lockstep side has nothing to scrub).
void erase_field(std::string& json, const std::string& key) {
  std::size_t pos;
  while ((pos = json.find(key)) != std::string::npos) {
    const std::size_t begin = json.rfind(',', pos);
    ASSERT_NE(begin, std::string::npos);
    std::size_t vend = pos + key.size();
    while (vend < json.size() && json[vend] != ',' && json[vend] != '}' &&
           json[vend] != '\n') {
      ++vend;
    }
    json.erase(begin, vend - begin);
  }
}

std::string scrub(std::string json) {
  erase_field(json, "\"overlap_saved_seconds\":");
  // Quote-prefixed keys cannot match inside longer keys
  // ("total_spans" vs "spans", "modeled_volume_seconds" vs
  // "modeled_seconds").
  scrub_value(json, "\"modeled_seconds\":");
  scrub_value(json, "\"modeled_volume_seconds\":");
  scrub_value(json, "\"modeled_total_seconds\":");
  scrub_value(json, "\"total_spans\":");
  scrub_value(json, "\"spans\":");
  const std::string breakdown = "\"modeled_breakdown\":{";
  const std::size_t pos = json.find(breakdown);
  if (pos != std::string::npos) {
    const std::size_t start = pos + breakdown.size();
    const std::size_t end = json.find('}', start);
    json.replace(start, end - start, "X");
  }
  return json;
}

// --- deterministic identity rendering ---------------------------------

void append_work_counts(std::ostringstream& out, const RankMetrics& m) {
  out << " reads=" << m.reads << " bases=" << m.bases
      << " kmers_parsed=" << m.kmers_parsed
      << " supermers_built=" << m.supermers_built
      << " supermer_bases=" << m.supermer_bases
      << " kmers_received=" << m.kmers_received
      << " supermers_received=" << m.supermers_received
      << " bytes_sent=" << m.bytes_sent
      << " bytes_received=" << m.bytes_received
      << " unique=" << m.unique_kmers << " counted=" << m.counted_kmers
      << "\n";
}

void append_spectrum(std::ostringstream& out,
                     const std::map<std::uint64_t, std::uint64_t>& spectrum) {
  out << "spectrum:";
  for (const auto& [multiplicity, distinct] : spectrum) {
    out << " " << multiplicity << ":" << distinct;
  }
  out << "\n";
}

struct RunOutcome {
  std::string identity;      ///< spectrum + counts + work-count fields
  std::string scrubbed_json; ///< metrics JSON net of allowed divergence
  double modeled_total = 0.0;
  double overlap_saved = 0.0;        ///< CountResult::overlap_saved_seconds
  double trace_overlap_saved = 0.0;  ///< MetricsReport aggregate
};

RunOutcome run_once(const DriverOptions& options, bool wide) {
  auto& session = trace::TraceSession::instance();
  session.reset();
  session.enable("");

  RunOutcome outcome;
  std::ostringstream identity;
  const CountResult* base = nullptr;
  CountResult narrow_result;
  WideCountResult wide_result;
  if (wide) {
    wide_result = run_distributed_count_wide(parity_reads(), options);
    base = &wide_result.base;
    std::map<std::uint64_t, std::uint64_t> spectrum;
    for (const auto& [key, count] : wide_result.global_counts) {
      spectrum[count] += 1;
    }
    append_spectrum(identity, spectrum);
    identity << "distinct=" << wide_result.global_counts.size() << "\n";
  } else {
    narrow_result = run_distributed_count(parity_reads(), options);
    base = &narrow_result;
    append_spectrum(identity, narrow_result.spectrum());
    identity << "distinct=" << narrow_result.global_counts.size() << "\n";
    // The global table itself, not just its spectrum.
    for (const auto& [key, count] : narrow_result.global_counts) {
      identity << key << ":" << count << "\n";
    }
  }
  for (int r = 0; r < base->nranks; ++r) {
    identity << "rank " << r << ":";
    append_work_counts(identity, base->ranks[static_cast<std::size_t>(r)]);
  }

  outcome.identity = identity.str();
  outcome.modeled_total = base->modeled_total_seconds();
  outcome.overlap_saved = base->overlap_saved_seconds();
  outcome.trace_overlap_saved = session.metrics().overlap_saved_seconds();
  outcome.scrubbed_json =
      scrub(session.metrics().to_json(/*include_wall=*/false));
  session.disable();
  return outcome;
}

// --- the matrix --------------------------------------------------------

struct Scenario {
  const char* name;
  bool wide;
  void (*configure)(DriverOptions&);
};

constexpr Scenario kScenarios[] = {
    {"cpu", false,
     [](DriverOptions& o) { o.pipeline.kind = PipelineKind::kCpu; }},
    {"cpu_wide", true,
     [](DriverOptions& o) {
       o.pipeline.kind = PipelineKind::kCpu;
       o.pipeline.k = 33;
     }},
    {"gpu_kmer", false,
     [](DriverOptions& o) { o.pipeline.kind = PipelineKind::kGpuKmer; }},
    {"gpu_kmer_consolidated", false,
     [](DriverOptions& o) {
       o.pipeline.kind = PipelineKind::kGpuKmer;
       o.pipeline.source_consolidation = true;
     }},
    {"gpu_supermer", false,
     [](DriverOptions& o) { o.pipeline.kind = PipelineKind::kGpuSupermer; }},
    {"gpu_supermer_wide", false,
     [](DriverOptions& o) {
       o.pipeline.kind = PipelineKind::kGpuSupermer;
       o.pipeline.wide_supermers = true;
       o.pipeline.window = 40;
     }},
    {"gpu_supermer_freq", false,
     [](DriverOptions& o) {
       o.pipeline.kind = PipelineKind::kGpuSupermer;
       o.pipeline.partition = PartitionScheme::kFrequencyBalanced;
     }},
};

/// (scenario index, staged exchange, per-round k-mer limit). The limits
/// drive the collectively-planned round count to roughly 2, 3, and 5.
class OverlapParity
    : public ::testing::TestWithParam<std::tuple<int, bool, std::uint64_t>> {
};

TEST_P(OverlapParity, OverlappedMatchesLockstepExceptModeledTimes) {
  const auto [scenario_index, staged, limit] = GetParam();
  const Scenario& scenario = kScenarios[scenario_index];

  DriverOptions options;
  scenario.configure(options);
  options.pipeline.exchange =
      staged ? ExchangeMode::kStaged : ExchangeMode::kGpuDirect;
  options.pipeline.max_kmers_per_round = limit;
  options.nranks = 4;

  options.pipeline.overlap_rounds = false;
  const RunOutcome lockstep = run_once(options, scenario.wide);
  options.pipeline.overlap_rounds = true;
  const RunOutcome overlapped = run_once(options, scenario.wide);

  // Bit-identical results and work ledgers.
  EXPECT_EQ(lockstep.identity, overlapped.identity) << scenario.name;
  EXPECT_EQ(lockstep.scrubbed_json, overlapped.scrubbed_json)
      << scenario.name;

  // Lockstep never records savings; the overlapped multi-round run must
  // record some and spend strictly less modeled time.
  EXPECT_EQ(lockstep.overlap_saved, 0.0) << scenario.name;
  EXPECT_EQ(lockstep.trace_overlap_saved, 0.0) << scenario.name;
  EXPECT_GT(overlapped.overlap_saved, 0.0) << scenario.name;
  EXPECT_GT(overlapped.trace_overlap_saved, 0.0) << scenario.name;
  EXPECT_LT(overlapped.modeled_total, lockstep.modeled_total)
      << scenario.name;
}

INSTANTIATE_TEST_SUITE_P(
    PipelinesModesRounds, OverlapParity,
    ::testing::Combine(::testing::Range(0, 7), ::testing::Bool(),
                       ::testing::Values(3'000u, 1'700u, 1'100u)));

// Degenerate shapes: a single round (nothing to overlap with) and a single
// rank (no off-rank traffic) must behave like lockstep — identical results
// and zero claimed savings.
TEST(OverlapParity, SingleRoundSavesNothing) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.pipeline.k = 17;
  options.nranks = 4;

  const RunOutcome lockstep = run_once(options, /*wide=*/false);
  options.pipeline.overlap_rounds = true;
  const RunOutcome overlapped = run_once(options, /*wide=*/false);

  EXPECT_EQ(lockstep.identity, overlapped.identity);
  // With one round the exchange has no parse to hide behind: the exposed
  // time is the full routine and no savings may be claimed.
  EXPECT_EQ(overlapped.overlap_saved, 0.0);
  EXPECT_DOUBLE_EQ(overlapped.modeled_total, lockstep.modeled_total);
}

TEST(OverlapParity, SingleRankSavesNothing) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kCpu;
  options.pipeline.k = 17;
  options.pipeline.max_kmers_per_round = 1'500;
  options.nranks = 1;

  const RunOutcome lockstep = run_once(options, /*wide=*/false);
  options.pipeline.overlap_rounds = true;
  const RunOutcome overlapped = run_once(options, /*wide=*/false);

  EXPECT_EQ(lockstep.identity, overlapped.identity);
  // All traffic is rank-local: the modeled routine time is zero, so there
  // is nothing to hide and nothing to save.
  EXPECT_EQ(overlapped.overlap_saved, 0.0);
  EXPECT_DOUBLE_EQ(overlapped.modeled_total, lockstep.modeled_total);
}

}  // namespace
}  // namespace dedukt::core
