#include "dedukt/core/device_hash_table.hpp"

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "dedukt/kmer/supermer.hpp"
#include "dedukt/util/rng.hpp"

namespace dedukt::core {
namespace {

TEST(DeviceHashTableTest, CountsKmersExactly) {
  gpusim::Device device;
  std::vector<std::uint64_t> kmers = {5, 5, 9, 5, 12, 9};
  auto d_kmers = device.alloc<std::uint64_t>(kmers.size());
  device.copy_to_device<std::uint64_t>(kmers, d_kmers);

  DeviceHashTable table(device, kmers.size());
  table.count_kmers(d_kmers, kmers.size());

  EXPECT_EQ(table.unique(), 3u);
  EXPECT_EQ(table.total(), 6u);
  std::map<std::uint64_t, std::uint32_t> entries;
  for (const auto& [key, count] : table.to_host()) entries[key] = count;
  EXPECT_EQ(entries[5], 3u);
  EXPECT_EQ(entries[9], 2u);
  EXPECT_EQ(entries[12], 1u);
}

TEST(DeviceHashTableTest, MatchesOracleUnderRandomWorkload) {
  gpusim::Device device;
  Xoshiro256 rng(66);
  std::vector<std::uint64_t> kmers;
  std::unordered_map<std::uint64_t, std::uint32_t> oracle;
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t key = rng.below(3'000);
    kmers.push_back(key);
    ++oracle[key];
  }
  auto d_kmers = device.alloc<std::uint64_t>(kmers.size());
  device.copy_to_device<std::uint64_t>(kmers, d_kmers);

  DeviceHashTable table(device, oracle.size());
  table.count_kmers(d_kmers, kmers.size());

  EXPECT_EQ(table.unique(), oracle.size());
  for (const auto& [key, count] : table.to_host()) {
    ASSERT_EQ(count, oracle.at(key));
  }
}

TEST(DeviceHashTableTest, CountsFromSupermers) {
  gpusim::Device device;
  // Supermer "ACGTA" with k=3 carries ACG, CGT, GTA.
  const kmer::KmerCode bases =
      kmer::pack("ACGTA", io::BaseEncoding::kStandard);
  std::vector<std::uint64_t> words = {bases, bases};
  std::vector<std::uint8_t> lens = {5, 5};
  auto d_words = device.alloc<std::uint64_t>(2);
  auto d_lens = device.alloc<std::uint8_t>(2);
  device.copy_to_device<std::uint64_t>(words, d_words);
  device.copy_to_device<std::uint8_t>(lens, d_lens);

  DeviceHashTable table(device, 6);
  table.count_supermers(d_words, d_lens, 2, /*k=*/3);

  EXPECT_EQ(table.unique(), 3u);
  EXPECT_EQ(table.total(), 6u);
  std::map<std::uint64_t, std::uint32_t> entries;
  for (const auto& [key, count] : table.to_host()) entries[key] = count;
  EXPECT_EQ(entries[kmer::pack("ACG", io::BaseEncoding::kStandard)], 2u);
  EXPECT_EQ(entries[kmer::pack("CGT", io::BaseEncoding::kStandard)], 2u);
  EXPECT_EQ(entries[kmer::pack("GTA", io::BaseEncoding::kStandard)], 2u);
}

TEST(DeviceHashTableTest, SupermerAndKmerPathsAgree) {
  gpusim::Device device;
  Xoshiro256 rng(67);
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  constexpr int kK = 7;

  std::vector<std::uint64_t> words;
  std::vector<std::uint8_t> lens;
  std::vector<std::uint64_t> flat_kmers;
  for (int i = 0; i < 500; ++i) {
    const int len = kK + static_cast<int>(rng.below(10));
    std::string seq;
    for (int j = 0; j < len; ++j) seq.push_back(kBases[rng.below(4)]);
    words.push_back(kmer::pack(seq, io::BaseEncoding::kStandard));
    lens.push_back(static_cast<std::uint8_t>(len));
    for (const auto code :
         kmer::extract_kmers(seq, kK, io::BaseEncoding::kStandard)) {
      flat_kmers.push_back(code);
    }
  }

  auto d_words = device.alloc<std::uint64_t>(words.size());
  auto d_lens = device.alloc<std::uint8_t>(lens.size());
  auto d_kmers = device.alloc<std::uint64_t>(flat_kmers.size());
  device.copy_to_device<std::uint64_t>(words, d_words);
  device.copy_to_device<std::uint8_t>(lens, d_lens);
  device.copy_to_device<std::uint64_t>(flat_kmers, d_kmers);

  DeviceHashTable by_supermer(device, flat_kmers.size());
  by_supermer.count_supermers(d_words, d_lens, words.size(), kK);
  DeviceHashTable by_kmer(device, flat_kmers.size());
  by_kmer.count_kmers(d_kmers, flat_kmers.size());

  std::map<std::uint64_t, std::uint32_t> a, b;
  for (const auto& [key, count] : by_supermer.to_host()) a[key] = count;
  for (const auto& [key, count] : by_kmer.to_host()) b[key] = count;
  EXPECT_EQ(a, b);
}

TEST(DeviceHashTableTest, CapacityIsPowerOfTwoWithHeadroom) {
  gpusim::Device device;
  DeviceHashTable table(device, 1000, 2.0);
  EXPECT_GE(table.capacity(), 2000u);
  EXPECT_EQ(table.capacity() & (table.capacity() - 1), 0u);
}

TEST(DeviceHashTableTest, HighLoadFactorStillCorrect) {
  // Headroom 1.0 allows the table to run essentially full.
  gpusim::Device device;
  std::vector<std::uint64_t> kmers;
  for (std::uint64_t i = 0; i < 4096; ++i) kmers.push_back(i);
  auto d_kmers = device.alloc<std::uint64_t>(kmers.size());
  device.copy_to_device<std::uint64_t>(kmers, d_kmers);
  DeviceHashTable table(device, 4096, 1.0);
  table.count_kmers(d_kmers, kmers.size());
  EXPECT_EQ(table.unique(), 4096u);
}

TEST(DeviceHashTableTest, OverfullTableThrows) {
  gpusim::Device device;
  std::vector<std::uint64_t> kmers;
  for (std::uint64_t i = 0; i < 100; ++i) kmers.push_back(i);
  auto d_kmers = device.alloc<std::uint64_t>(kmers.size());
  device.copy_to_device<std::uint64_t>(kmers, d_kmers);
  DeviceHashTable table(device, 8, 1.0);  // capacity 16 < 100 keys
  EXPECT_THROW(table.count_kmers(d_kmers, kmers.size()), SimulationError);
}

TEST(DeviceHashTableTest, InsertionCountsAtomics) {
  gpusim::Device device;
  std::vector<std::uint64_t> kmers(1000, 7);
  auto d_kmers = device.alloc<std::uint64_t>(kmers.size());
  device.copy_to_device<std::uint64_t>(kmers, d_kmers);
  DeviceHashTable table(device, 10, 2.0, /*smem_agg=*/false);
  const auto stats = table.count_kmers(d_kmers, kmers.size());
  // Legacy per-occurrence path: each insert does a CAS + an atomic add.
  EXPECT_EQ(stats.counters.atomics, 2000u);
  EXPECT_EQ(stats.counters.smem_atomics, 0u);
  EXPECT_GT(stats.modeled_seconds, 0.0);
}

TEST(DeviceHashTableTest, SmemAggregationCollapsesGlobalAtomics) {
  gpusim::Device device;
  // 1000 copies of one key at block_dim 256 -> 4 blocks, each aggregating
  // to a single distinct key flushed with one global insert.
  std::vector<std::uint64_t> kmers(1000, 7);
  auto d_kmers = device.alloc<std::uint64_t>(kmers.size());
  device.copy_to_device<std::uint64_t>(kmers, d_kmers);

  DeviceHashTable legacy(device, 10, 2.0, /*smem_agg=*/false);
  const auto legacy_stats = legacy.count_kmers(d_kmers, kmers.size());
  DeviceHashTable agg(device, 10, 2.0, /*smem_agg=*/true);
  const auto agg_stats = agg.count_kmers(d_kmers, kmers.size());

  // One flush insert per block: 4 CAS+add pairs instead of 2000 atomics.
  EXPECT_EQ(agg_stats.counters.atomics, 8u);
  // Shared-memory atomics took the per-occurrence traffic: each block's
  // first occurrence claims (CAS + add), the rest add once.
  // 3 full blocks of 256 plus one block of 232: 3 * 257 + 233.
  EXPECT_EQ(agg_stats.counters.smem_atomics, 1004u);
  // Global atomics dominate the legacy kernel, so moving the duplicates
  // onto shared memory must lower the modeled time.
  EXPECT_LT(agg_stats.modeled_seconds, legacy_stats.modeled_seconds);

  // Identical table contents either way.
  std::map<std::uint64_t, std::uint32_t> a, b;
  for (const auto& [key, count] : legacy.to_host()) a[key] = count;
  for (const auto& [key, count] : agg.to_host()) b[key] = count;
  EXPECT_EQ(a, b);
}

TEST(DeviceHashTableTest, EmptyInputIsFine) {
  gpusim::Device device;
  auto d_kmers = device.alloc<std::uint64_t>(1);
  DeviceHashTable table(device, 0);
  table.count_kmers(d_kmers, 0);
  EXPECT_EQ(table.unique(), 0u);
  EXPECT_EQ(table.total(), 0u);
  EXPECT_TRUE(table.to_host().empty());
}

}  // namespace
}  // namespace dedukt::core
