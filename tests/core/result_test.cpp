#include "dedukt/core/result.hpp"

#include <gtest/gtest.h>

namespace dedukt::core {
namespace {

CountResult two_rank_result() {
  CountResult result;
  result.nranks = 2;
  RankMetrics a, b;
  a.kmers_parsed = 100;
  a.counted_kmers = 80;
  a.unique_kmers = 40;
  a.bytes_sent = 800;
  a.bytes_received = 700;
  a.supermers_built = 10;
  a.modeled.add(kPhaseParse, 1.0);
  a.modeled.add(kPhaseExchange, 5.0);
  a.modeled.add(kPhaseCount, 2.0);
  b.kmers_parsed = 60;
  b.counted_kmers = 80;
  b.unique_kmers = 30;
  b.bytes_sent = 700;
  b.bytes_received = 800;
  b.supermers_built = 5;
  b.modeled.add(kPhaseParse, 2.0);
  b.modeled.add(kPhaseExchange, 4.0);
  b.modeled.add(kPhaseCount, 1.0);
  result.ranks = {a, b};
  return result;
}

TEST(ResultTest, TotalsSumAcrossRanks) {
  const CountResult result = two_rank_result();
  const RankMetrics totals = result.totals();
  EXPECT_EQ(totals.kmers_parsed, 160u);
  EXPECT_EQ(totals.counted_kmers, 160u);
  EXPECT_EQ(totals.unique_kmers, 70u);
  EXPECT_EQ(totals.bytes_sent, 1500u);
  EXPECT_EQ(totals.supermers_built, 15u);
  EXPECT_DOUBLE_EQ(totals.modeled.get(kPhaseParse), 3.0);
}

TEST(ResultTest, ModeledBreakdownTakesPerPhaseMax) {
  const CountResult result = two_rank_result();
  const PhaseTimes breakdown = result.modeled_breakdown();
  EXPECT_DOUBLE_EQ(breakdown.get(kPhaseParse), 2.0);
  EXPECT_DOUBLE_EQ(breakdown.get(kPhaseExchange), 5.0);
  EXPECT_DOUBLE_EQ(breakdown.get(kPhaseCount), 2.0);
  EXPECT_DOUBLE_EQ(result.modeled_total_seconds(), 9.0);
}

TEST(ResultTest, LoadImbalanceOfEqualLoadsIsOne) {
  const CountResult result = two_rank_result();
  EXPECT_DOUBLE_EQ(result.load_imbalance(), 1.0);  // 80 and 80
}

TEST(ResultTest, MinMaxLoad) {
  CountResult result = two_rank_result();
  result.ranks[0].counted_kmers = 30;
  result.ranks[1].counted_kmers = 90;
  const auto [lo, hi] = result.min_max_load();
  EXPECT_EQ(lo, 30u);
  EXPECT_EQ(hi, 90u);
  EXPECT_DOUBLE_EQ(result.load_imbalance(), 90.0 / 60.0);
}

TEST(ResultTest, SpectrumFromGlobalCounts) {
  CountResult result;
  result.global_counts = {{1, 1}, {2, 1}, {3, 5}, {4, 5}, {5, 2}};
  const auto spectrum = result.spectrum();
  EXPECT_EQ(spectrum.at(1), 2u);
  EXPECT_EQ(spectrum.at(5), 2u);
  EXPECT_EQ(spectrum.at(2), 1u);
  EXPECT_EQ(spectrum.size(), 3u);
}

TEST(ResultTest, EmptyResultIsSane) {
  CountResult result;
  EXPECT_EQ(result.totals().kmers_parsed, 0u);
  EXPECT_DOUBLE_EQ(result.modeled_total_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(result.load_imbalance(), 1.0);
  EXPECT_TRUE(result.spectrum().empty());
  EXPECT_EQ(result.min_max_load().first, 0u);
}

}  // namespace
}  // namespace dedukt::core
