#include "dedukt/core/spectrum.hpp"

#include <gtest/gtest.h>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/datasets.hpp"

namespace dedukt::core {
namespace {

TEST(SpectrumAnalysisTest, EmptySpectrum) {
  const SpectrumAnalysis a = analyze_spectrum({});
  EXPECT_EQ(a.coverage_peak, 0u);
  EXPECT_EQ(a.genome_size_estimate, 0u);
  EXPECT_EQ(a.distinct_kmers, 0u);
}

TEST(SpectrumAnalysisTest, CleanUnimodalSpectrum) {
  // Ideal 30x dataset: everything at multiplicity 30.
  Spectrum spectrum = {{30, 1000}};
  const SpectrumAnalysis a = analyze_spectrum(spectrum);
  EXPECT_EQ(a.coverage_peak, 30u);
  EXPECT_EQ(a.valley, 0u);  // unimodal
  EXPECT_EQ(a.error_kmers, 0u);
  EXPECT_EQ(a.genome_size_estimate, 1000u);
  EXPECT_EQ(a.distinct_kmers, 1000u);
  EXPECT_EQ(a.total_instances, 30'000u);
}

TEST(SpectrumAnalysisTest, BimodalWithErrorSpike) {
  // Error spike at 1-2x, valley at 5, coverage peak at 30.
  Spectrum spectrum = {{1, 5000}, {2, 800}, {5, 10},
                       {28, 300}, {30, 900}, {32, 280}};
  const SpectrumAnalysis a = analyze_spectrum(spectrum);
  EXPECT_EQ(a.coverage_peak, 30u);
  EXPECT_EQ(a.valley, 5u);
  EXPECT_EQ(a.error_kmers, 5000u + 800u + 10u);
  // Genome estimate excludes the error mass.
  const std::uint64_t signal =
      28 * 300 + 30 * 900 + 32 * 280;
  EXPECT_EQ(a.genome_size_estimate, signal / 30);
}

TEST(SpectrumAnalysisTest, PeakGuardSkipsErrorSpike) {
  // Without the guard the spike at 1 would win.
  Spectrum spectrum = {{1, 100'000}, {20, 5'000}};
  const SpectrumAnalysis a = analyze_spectrum(spectrum, 3);
  EXPECT_EQ(a.coverage_peak, 20u);
}

TEST(SpectrumAnalysisTest, EndToEndOnSyntheticDataset) {
  // A 30x-coverage preset, counted canonically so the two strands fold
  // together: the spectrum peak should land near the sequencing coverage
  // and the genome estimate near the scaled genome size.
  const auto preset = *io::find_preset("paeruginosa30x");
  const std::uint64_t scale = 400;
  const io::ReadBatch reads = io::make_dataset(preset, scale);

  DriverOptions options;
  options.pipeline.kind = PipelineKind::kCpu;
  options.pipeline.canonical = true;
  options.nranks = 4;
  const CountResult result = run_distributed_count(reads, options);
  const SpectrumAnalysis a = analyze_spectrum(result.spectrum());

  EXPECT_GT(a.coverage_peak, 22u);
  EXPECT_LT(a.coverage_peak, 40u);
  const double true_genome =
      static_cast<double>(preset.genome_size) / static_cast<double>(scale);
  EXPECT_NEAR(static_cast<double>(a.genome_size_estimate), true_genome,
              true_genome * 0.25);
}

TEST(SpectrumAnalysisTest, NonCanonicalCountsSplitStrands) {
  // Without canonicalization (the paper's setting) each strand of a
  // two-strand-sampled dataset accumulates roughly half the coverage, so
  // the peak halves and distinct k-mers roughly double.
  const auto preset = *io::find_preset("paeruginosa30x");
  const io::ReadBatch reads = io::make_dataset(preset, 400);

  DriverOptions canonical;
  canonical.pipeline.kind = PipelineKind::kCpu;
  canonical.pipeline.canonical = true;
  canonical.nranks = 4;
  DriverOptions plain;
  plain.nranks = 4;

  const SpectrumAnalysis c =
      analyze_spectrum(run_distributed_count(reads, canonical).spectrum());
  const SpectrumAnalysis p =
      analyze_spectrum(run_distributed_count(reads, plain).spectrum());
  EXPECT_LT(p.coverage_peak, c.coverage_peak);
  EXPECT_GT(p.distinct_kmers, c.distinct_kmers);
}

TEST(RenderSpectrumTest, RowsAndClamping) {
  Spectrum spectrum;
  for (std::uint64_t m = 1; m <= 40; ++m) spectrum[m] = m * 10;
  const auto rows = render_spectrum(spectrum, /*max_rows=*/10);
  ASSERT_EQ(rows.size(), 11u);  // 10 rows + ellipsis
  EXPECT_NE(rows.back().find("more rows"), std::string::npos);
}

TEST(RenderSpectrumTest, BarsScaleWithCounts) {
  Spectrum spectrum = {{1, 100}, {2, 50}};
  const auto rows = render_spectrum(spectrum, 10, 40);
  const auto hashes = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '#');
  };
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(hashes(rows[0]), 40);
  EXPECT_EQ(hashes(rows[1]), 20);
}

}  // namespace
}  // namespace dedukt::core
