// Heavy-hitter extraction battery (ctest -L sketch): Zipf-skewed inputs
// through --sketch --heavy-threshold, checked against the exact backend.
//
// One-sidedness makes the second pass's recall EXACTLY 1.0 — any key whose
// true global count reaches the threshold has estimate >= count >=
// threshold in the merged sketch, so it cannot be filtered out. False
// positives (cold keys whose over-counted estimate clears the bar) are
// possible; the battery records them via SketchSummary::false_positives()
// and bounds their rate. The extracted counts come from an exact table in
// pass 2, so they must be bit-identical to the exact backend's.
#include "dedukt/core/driver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "dedukt/core/sketch.hpp"
#include "dedukt/util/rng.hpp"

namespace dedukt::core {
namespace {

/// Skewed dataset: a few hot templates repeated many times over a bed of
/// unique cold reads — every hot template's k-mers are heavy, the cold
/// k-mers are (mostly) singletons.
io::ReadBatch skewed_reads(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const char bases[] = {'A', 'C', 'G', 'T'};
  auto random_read = [&](std::size_t length) {
    std::string read(length, 'A');
    for (char& base : read) base = bases[rng.below(4)];
    return read;
  };
  io::ReadBatch batch;
  std::size_t id = 0;
  auto push = [&](const std::string& read) {
    batch.reads.push_back({"r" + std::to_string(id++), read, ""});
  };
  // 6 hot templates x 40 copies: their k-mers reach count >= 40.
  std::vector<std::string> hot;
  for (int h = 0; h < 6; ++h) hot.push_back(random_read(60));
  for (int copy = 0; copy < 40; ++copy) {
    for (const std::string& read : hot) push(read);
  }
  // 300 cold unique reads.
  for (int c = 0; c < 300; ++c) push(random_read(60));
  return batch;
}

DriverOptions heavy_options(PipelineKind kind, bool conservative,
                            std::uint64_t threshold) {
  DriverOptions options;
  options.pipeline.kind = kind;
  options.pipeline.sketch = true;
  options.pipeline.sketch_width = 1u << 14;
  options.pipeline.sketch_depth = 4;
  options.pipeline.sketch_conservative = conservative;
  options.pipeline.heavy_threshold = threshold;
  options.nranks = 3;
  return options;
}

std::map<std::uint64_t, std::uint64_t> exact_counts(
    const io::ReadBatch& reads) {
  DriverOptions exact;
  exact.pipeline.kind = PipelineKind::kCpu;
  exact.nranks = 3;
  const CountResult result = run_distributed_count(reads, exact);
  return {result.global_counts.begin(), result.global_counts.end()};
}

void check_extraction(const io::ReadBatch& reads, PipelineKind kind,
                      bool conservative) {
  constexpr std::uint64_t kThreshold = 30;
  const auto truth = exact_counts(reads);
  const CountResult result =
      run_distributed_count(reads, heavy_options(kind, conservative,
                                                 kThreshold));
  ASSERT_TRUE(result.sketch.enabled);
  const std::map<std::uint64_t, std::uint64_t> extracted(
      result.sketch.heavy_hitters.begin(),
      result.sketch.heavy_hitters.end());
  ASSERT_EQ(extracted.size(), result.sketch.heavy_hitters.size())
      << "duplicate keys in the merged heavy-hitter list";

  // Recall must be exactly 1.0, with bit-identical exact counts.
  std::uint64_t heavy_truth = 0;
  for (const auto& [key, count] : truth) {
    if (count < kThreshold) continue;
    ++heavy_truth;
    const auto it = extracted.find(key);
    ASSERT_NE(it, extracted.end()) << "missed heavy key " << key
                                   << " (count " << count << ")";
    EXPECT_EQ(it->second, count);
  }
  ASSERT_GT(heavy_truth, 0u) << "test input produced no heavy keys";

  // Every extracted count is the exact count (pass 2 counts exactly).
  std::uint64_t false_positives = 0;
  for (const auto& [key, count] : extracted) {
    const auto it = truth.find(key);
    ASSERT_NE(it, truth.end());
    EXPECT_EQ(count, it->second);
    if (count < kThreshold) ++false_positives;
  }
  // The summary's own FP accounting agrees with the ground truth...
  EXPECT_EQ(result.sketch.false_positives(), false_positives);
  // ...and at this width the over-count needed to fake 30x is rare: the
  // candidate set stays dominated by true heavy hitters.
  EXPECT_LE(false_positives, extracted.size() / 2);
}

TEST(SketchHeavyHitterTest, VanillaCpuExtractionExact) {
  check_extraction(skewed_reads(31), PipelineKind::kCpu,
                   /*conservative=*/false);
}

TEST(SketchHeavyHitterTest, ConservativeCpuExtractionExact) {
  // Conservative estimates are tighter, so the FP set can only shrink;
  // recall stays 1.0 because conservative updates are still one-sided.
  check_extraction(skewed_reads(31), PipelineKind::kCpu,
                   /*conservative=*/true);
}

TEST(SketchHeavyHitterTest, GpuKindsUseEstimateKernel) {
  check_extraction(skewed_reads(32), PipelineKind::kGpuKmer,
                   /*conservative=*/false);
  check_extraction(skewed_reads(32), PipelineKind::kGpuSupermer,
                   /*conservative=*/false);
}

TEST(SketchHeavyHitterTest, ExtractionIdenticalAcrossKinds) {
  const io::ReadBatch reads = skewed_reads(33);
  const CountResult cpu = run_distributed_count(
      reads, heavy_options(PipelineKind::kCpu, false, 30));
  const CountResult gpu = run_distributed_count(
      reads, heavy_options(PipelineKind::kGpuKmer, false, 30));
  EXPECT_EQ(cpu.sketch.heavy_hitters, gpu.sketch.heavy_hitters);
}

TEST(SketchHeavyHitterTest, StreamedRunExtractsSameHitters) {
  // --batch-reads composition retains batches for pass 2; the extraction
  // must match the in-memory run exactly.
  const io::ReadBatch reads = skewed_reads(34);
  const CountResult whole = run_distributed_count(
      reads, heavy_options(PipelineKind::kCpu, false, 30));
  DriverOptions streamed = heavy_options(PipelineKind::kCpu, false, 30);
  streamed.batch.max_reads = 100;
  const CountResult batched = run_distributed_count(reads, streamed);
  EXPECT_EQ(batched.sketch.heavy_hitters, whole.sketch.heavy_hitters);
  EXPECT_EQ(batched.sketch.cells, whole.sketch.cells);
}

TEST(SketchHeavyHitterTest, ThresholdAboveEverythingExtractsNothing) {
  const io::ReadBatch reads = skewed_reads(35);
  const CountResult result = run_distributed_count(
      reads, heavy_options(PipelineKind::kCpu, false, 1u << 20));
  EXPECT_TRUE(result.sketch.heavy_hitters.empty());
  EXPECT_EQ(result.sketch.false_positives(), 0u);
}

}  // namespace
}  // namespace dedukt::core
