// §III-A multi-round processing: when the k-mer volume exceeds the
// per-round memory limit, the pipelines run several lock-stepped
// parse/exchange/count rounds. Counts must be identical to a single-round
// run, and the communicated volume must not change.
#include <gtest/gtest.h>

#include <map>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/synthetic.hpp"

namespace dedukt::core {
namespace {

io::ReadBatch test_reads() {
  io::GenomeSpec gspec;
  gspec.length = 7'000;
  gspec.seed = 61;
  io::ReadSpec rspec;
  rspec.coverage = 4.0;
  rspec.mean_read_length = 400;
  rspec.min_read_length = 60;
  return io::generate_dataset(gspec, rspec);
}

std::map<std::uint64_t, std::uint64_t> as_map(const CountResult& result) {
  return {result.global_counts.begin(), result.global_counts.end()};
}

class MultiRoundSweep
    : public ::testing::TestWithParam<std::tuple<PipelineKind, int>> {};

TEST_P(MultiRoundSweep, CountsIdenticalToSingleRound) {
  const auto [kind, nranks] = GetParam();
  const io::ReadBatch reads = test_reads();

  DriverOptions single;
  single.pipeline.kind = kind;
  single.nranks = nranks;
  const CountResult one = run_distributed_count(reads, single);

  DriverOptions multi = single;
  // Force several rounds: each rank holds far more k-mers than this.
  multi.pipeline.max_kmers_per_round = 1'500;
  const CountResult many = run_distributed_count(reads, multi);

  EXPECT_EQ(as_map(one), as_map(many));
  EXPECT_EQ(one.totals().kmers_parsed, many.totals().kmers_parsed);
  // Rounds change when data moves, not how much.
  EXPECT_EQ(one.totals().bytes_sent, many.totals().bytes_sent);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndRanks, MultiRoundSweep,
    ::testing::Combine(::testing::Values(PipelineKind::kCpu,
                                         PipelineKind::kGpuKmer,
                                         PipelineKind::kGpuSupermer),
                       ::testing::Values(1, 4, 7)));

TEST(MultiRoundTest, MoreAlltoallvCallsWithRounds) {
  const io::ReadBatch reads = test_reads();
  DriverOptions multi;
  multi.pipeline.kind = PipelineKind::kGpuKmer;
  multi.pipeline.max_kmers_per_round = 1'000;
  multi.nranks = 4;
  multi.collect_counts = false;
  const CountResult result = run_distributed_count(reads, multi);
  // With ~28k k-mers over 4 ranks and a 1k limit, each rank runs ~7 rounds;
  // every round moves data (some bytes in every round).
  const auto totals = result.totals();
  EXPECT_GT(totals.bytes_sent, 0u);
  EXPECT_EQ(totals.kmers_parsed, reads.total_kmers(17));
}

TEST(MultiRoundTest, UnevenRanksStayInLockstep) {
  // One rank holds almost all the data; the others must follow its round
  // count without deadlock and with exact results.
  io::ReadBatch reads = test_reads();
  // Sort reads so partitioning gives rank 0 the longest reads (simulates a
  // skewed input distribution).
  std::sort(reads.reads.begin(), reads.reads.end(),
            [](const io::Read& a, const io::Read& b) {
              return a.bases.size() > b.bases.size();
            });
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.pipeline.max_kmers_per_round = 2'000;
  options.nranks = 5;
  const CountResult result = run_distributed_count(reads, options);

  std::map<std::uint64_t, std::uint64_t> expected;
  reference_count(reads, options.pipeline)
      .for_each([&](std::uint64_t key, std::uint64_t count) {
        expected[key] = count;
      });
  EXPECT_EQ(as_map(result), expected);
}

TEST(MultiRoundTest, FrequencyBalancedSurvivesRounds) {
  const io::ReadBatch reads = test_reads();
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.pipeline.partition = PartitionScheme::kFrequencyBalanced;
  options.pipeline.max_kmers_per_round = 3'000;
  options.nranks = 4;
  const CountResult result = run_distributed_count(reads, options);

  std::map<std::uint64_t, std::uint64_t> expected;
  reference_count(reads, options.pipeline)
      .for_each([&](std::uint64_t key, std::uint64_t count) {
        expected[key] = count;
      });
  EXPECT_EQ(as_map(result), expected);
}

TEST(MultiRoundTest, LimitLargerThanInputIsOneRound) {
  const io::ReadBatch reads = test_reads();
  DriverOptions a, b;
  a.pipeline.max_kmers_per_round = 0;
  b.pipeline.max_kmers_per_round = 1ull << 40;
  a.nranks = b.nranks = 3;
  const CountResult ra = run_distributed_count(reads, a);
  const CountResult rb = run_distributed_count(reads, b);
  EXPECT_EQ(as_map(ra), as_map(rb));
  // Same number of exchanges implies the same modeled network time.
  EXPECT_DOUBLE_EQ(ra.modeled_breakdown().get(kPhaseExchange),
                   rb.modeled_breakdown().get(kPhaseExchange));
}

}  // namespace
}  // namespace dedukt::core
