// End-to-end tests of the wide-supermer GPU pipeline (two-word packing).
#include <gtest/gtest.h>

#include <map>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/synthetic.hpp"

namespace dedukt::core {
namespace {

io::ReadBatch test_reads(std::uint64_t seed = 3) {
  io::GenomeSpec gspec;
  gspec.length = 7'000;
  gspec.seed = seed;
  io::ReadSpec rspec;
  rspec.coverage = 4.0;
  rspec.mean_read_length = 500;
  rspec.min_read_length = 80;
  rspec.seed = seed + 1;
  return io::generate_dataset(gspec, rspec);
}

std::map<std::uint64_t, std::uint64_t> as_map(const CountResult& result) {
  return {result.global_counts.begin(), result.global_counts.end()};
}

class WideSupermerPipelineSweep : public ::testing::TestWithParam<int> {};

TEST_P(WideSupermerPipelineSweep, CountsMatchReferenceAcrossWindows) {
  const int window = GetParam();
  const io::ReadBatch reads = test_reads();

  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.pipeline.wide_supermers = true;
  options.pipeline.window = window;
  options.nranks = 5;
  const CountResult result = run_distributed_count(reads, options);

  std::map<std::uint64_t, std::uint64_t> expected;
  reference_count(reads, options.pipeline)
      .for_each([&](std::uint64_t key, std::uint64_t count) {
        expected[key] = count;
      });
  EXPECT_EQ(as_map(result), expected);
}

INSTANTIATE_TEST_SUITE_P(Windows, WideSupermerPipelineSweep,
                         ::testing::Values(15, 25, 47));

TEST(WideSupermerPipelineTest, LargerWindowShipsFewerBytes) {
  const io::ReadBatch reads = test_reads(11);
  DriverOptions narrow;
  narrow.pipeline.kind = PipelineKind::kGpuSupermer;
  narrow.pipeline.window = 15;
  narrow.nranks = 6;
  narrow.collect_counts = false;

  DriverOptions wide = narrow;
  wide.pipeline.wide_supermers = true;
  wide.pipeline.window = 47;

  const auto n = run_distributed_count(reads, narrow);
  const auto w = run_distributed_count(reads, wide);
  // Fewer supermers with the longer window...
  EXPECT_LT(w.total_supermers(), n.total_supermers());
  // ...but each wide supermer ships 17 bytes vs 9; whether total bytes
  // shrink depends on the compression gained. At minimum the average
  // supermer must be longer.
  const double avg_narrow =
      static_cast<double>(n.totals().supermer_bases) /
      static_cast<double>(n.total_supermers());
  const double avg_wide =
      static_cast<double>(w.totals().supermer_bases) /
      static_cast<double>(w.total_supermers());
  EXPECT_GT(avg_wide, avg_narrow);
}

TEST(WideSupermerPipelineTest, ComposesWithBloomFilter) {
  const io::ReadBatch reads = test_reads(21);
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.pipeline.wide_supermers = true;
  options.pipeline.window = 40;
  options.pipeline.filter_singletons = true;
  options.nranks = 4;
  const CountResult filtered = run_distributed_count(reads, options);

  DriverOptions plain = options;
  plain.pipeline.filter_singletons = false;
  const CountResult truth = run_distributed_count(reads, plain);

  const auto truth_map = as_map(truth);
  for (const auto& [key, count] : as_map(filtered)) {
    const auto it = truth_map.find(key);
    ASSERT_NE(it, truth_map.end());
    EXPECT_GE(count, it->second);
    EXPECT_LE(count, it->second + 1);
  }
  EXPECT_LE(filtered.total_unique(), truth.total_unique());
}

TEST(WideSupermerPipelineTest, ComposesWithFrequencyBalancedRouting) {
  const io::ReadBatch reads = test_reads(31);
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.pipeline.wide_supermers = true;
  options.pipeline.window = 33;
  options.pipeline.partition = PartitionScheme::kFrequencyBalanced;
  options.nranks = 5;
  const CountResult result = run_distributed_count(reads, options);

  std::map<std::uint64_t, std::uint64_t> expected;
  reference_count(reads, options.pipeline)
      .for_each([&](std::uint64_t key, std::uint64_t count) {
        expected[key] = count;
      });
  EXPECT_EQ(as_map(result), expected);
}

TEST(WideSupermerPipelineTest, ComposesWithMultiRound) {
  const io::ReadBatch reads = test_reads(41);
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.pipeline.wide_supermers = true;
  options.pipeline.window = 47;
  options.pipeline.max_kmers_per_round = 2'000;
  options.nranks = 4;
  const CountResult multi = run_distributed_count(reads, options);

  options.pipeline.max_kmers_per_round = 0;
  const CountResult single = run_distributed_count(reads, options);
  EXPECT_EQ(as_map(multi), as_map(single));
}

TEST(WideSupermerPipelineTest, ValidateRejectsBigWindowWithoutWideFlag) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.pipeline.window = 47;  // needs wide_supermers
  EXPECT_THROW(run_distributed_count(test_reads(), options),
               PreconditionError);
}

}  // namespace
}  // namespace dedukt::core
