// Failure injection: resource exhaustion and rank failures inside the
// distributed pipelines must surface as exceptions on the caller's thread,
// never as deadlocks or silent corruption.
#include <gtest/gtest.h>

#include "dedukt/core/driver.hpp"
#include "dedukt/core/pipeline.hpp"
#include "dedukt/io/partition.hpp"
#include "dedukt/io/synthetic.hpp"
#include "dedukt/mpisim/runtime.hpp"

namespace dedukt::core {
namespace {

io::ReadBatch test_reads() {
  io::GenomeSpec gspec;
  gspec.length = 6'000;
  gspec.seed = 17;
  io::ReadSpec rspec;
  rspec.coverage = 3.0;
  rspec.mean_read_length = 400;
  rspec.min_read_length = 80;
  return io::generate_dataset(gspec, rspec);
}

TEST(FailureInjectionTest, DeviceOutOfMemorySurfacesFromDriver) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuKmer;
  options.nranks = 4;
  options.device.memory_bytes = 1024;  // no pipeline fits in 1 KiB
  EXPECT_THROW(run_distributed_count(test_reads(), options),
               SimulationError);
}

TEST(FailureInjectionTest, DeviceOomDoesNotDeadlockOtherRanks) {
  // Only rank 2's device is crippled; the others must be released by the
  // barrier abort instead of waiting forever at the exchange.
  const io::ReadBatch reads = test_reads();
  const auto batches = io::partition_by_bases(reads, 4);
  mpisim::Runtime runtime(4);
  PipelineConfig config;
  config.kind = PipelineKind::kGpuKmer;
  EXPECT_THROW(
      runtime.run([&](mpisim::Comm& comm) {
        gpusim::DeviceProps props;
        if (comm.rank() == 2) props.memory_bytes = 1024;
        gpusim::Device device(props);
        HostHashTable table;
        (void)run_gpu_kmer_rank(
            comm, device, batches[static_cast<std::size_t>(comm.rank())],
            config, table);
      }),
      Error);
}

TEST(FailureInjectionTest, UndersizedDeviceTableSurfaces) {
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.pipeline.table_headroom = 1.0;
  options.nranks = 3;
  // headroom 1.0 still rounds up to a power of two, so this usually
  // succeeds; shrink the device instead to force the failure path.
  options.device.memory_bytes = 64 << 10;
  EXPECT_THROW(run_distributed_count(test_reads(), options), Error);
}

TEST(FailureInjectionTest, MalformedInputRejectedBeforeAnyRankWork) {
  DriverOptions options;
  options.nranks = 0;
  EXPECT_THROW(run_distributed_count(test_reads(), options),
               PreconditionError);
  options.nranks = 2;
  options.pipeline.k = 1;
  EXPECT_THROW(run_distributed_count(test_reads(), options),
               PreconditionError);
}

TEST(FailureInjectionTest, ThrowingRankInMultiRoundRunReleasesAll) {
  mpisim::Runtime runtime(5);
  EXPECT_THROW(runtime.run([&](mpisim::Comm& comm) {
                 for (int round = 0; round < 3; ++round) {
                   if (comm.rank() == 3 && round == 1) {
                     throw ParseError("injected failure in round 1");
                   }
                   std::vector<std::vector<int>> send(5,
                                                      std::vector<int>{1});
                   (void)comm.alltoallv(send);
                 }
               }),
               Error);
}

}  // namespace
}  // namespace dedukt::core
