#include "dedukt/core/debruijn.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/synthetic.hpp"
#include "dedukt/kmer/extract.hpp"

namespace dedukt::core {
namespace {

using io::BaseEncoding;

/// Graph over the k-mers of one or more sequences (unit multiplicities
/// unless repeated).
DeBruijnGraph graph_of(const std::vector<std::string>& sequences, int k) {
  std::map<std::uint64_t, std::uint64_t> counts;
  for (const auto& sequence : sequences) {
    for (const auto code :
         kmer::extract_kmers(sequence, k, BaseEncoding::kStandard)) {
      ++counts[code];
    }
  }
  return DeBruijnGraph({counts.begin(), counts.end()}, k,
                       BaseEncoding::kStandard);
}

TEST(DeBruijnTest, LinearSequenceIsOneUnitig) {
  const std::string sequence = "ACGTTGCAAGGCTTAC";
  const DeBruijnGraph graph = graph_of({sequence}, 5);
  const auto unitigs = graph.unitigs();
  ASSERT_EQ(unitigs.size(), 1u);
  EXPECT_EQ(unitigs[0].bases, sequence.size());
  EXPECT_EQ(unitigs[0].kmers, sequence.size() - 5 + 1);
  EXPECT_DOUBLE_EQ(unitigs[0].mean_coverage, 1.0);

  const GraphStats stats = graph.stats();
  EXPECT_EQ(stats.nodes, sequence.size() - 5 + 1);
  EXPECT_EQ(stats.edges, stats.nodes - 1);
  EXPECT_EQ(stats.unitigs, 1u);
  EXPECT_EQ(stats.tips, 2u);       // the two chain ends
  EXPECT_EQ(stats.junctions, 0u);
  EXPECT_EQ(stats.n50_bases, sequence.size());
}

TEST(DeBruijnTest, UnitigSequenceReconstructsTheInput) {
  const std::string sequence = "ACGTTGCAAGGCTTAC";
  const DeBruijnGraph graph = graph_of({sequence}, 5);
  const auto unitigs = graph.unitigs();
  ASSERT_EQ(unitigs.size(), 1u);
  EXPECT_EQ(graph.unitig_sequence(unitigs[0].first), sequence);
}

TEST(DeBruijnTest, SuccessorsAndPredecessors) {
  const DeBruijnGraph graph = graph_of({"ACGTA"}, 3);
  const auto acg = kmer::pack("ACG", BaseEncoding::kStandard);
  const auto cgt = kmer::pack("CGT", BaseEncoding::kStandard);
  const auto gta = kmer::pack("GTA", BaseEncoding::kStandard);
  EXPECT_EQ(graph.successors(acg), std::vector<kmer::KmerCode>{cgt});
  EXPECT_EQ(graph.successors(cgt), std::vector<kmer::KmerCode>{gta});
  EXPECT_TRUE(graph.successors(gta).empty());
  EXPECT_EQ(graph.predecessors(cgt), std::vector<kmer::KmerCode>{acg});
  EXPECT_TRUE(graph.predecessors(acg).empty());
  EXPECT_EQ(graph.in_degree(gta), 1);
  EXPECT_EQ(graph.out_degree(acg), 1);
}

TEST(DeBruijnTest, BranchSplitsUnitigs) {
  // Two sequences sharing a prefix: ...AB then B->C and B->D diverge.
  // ACGTA and ACGTC share ACG, CGT; then GTA vs GTC.
  const DeBruijnGraph graph = graph_of({"ACGTA", "ACGTC"}, 3);
  const GraphStats stats = graph.stats();
  EXPECT_EQ(stats.nodes, 4u);  // ACG CGT GTA GTC
  EXPECT_EQ(stats.junctions, 1u);  // CGT has out-degree 2
  // Unitigs: [ACG, CGT] then [GTA], [GTC].
  EXPECT_EQ(stats.unitigs, 3u);
}

TEST(DeBruijnTest, CoverageIsCountWeighted) {
  const DeBruijnGraph graph = graph_of({"ACGTA", "ACGTA", "ACGTA"}, 4);
  EXPECT_EQ(graph.coverage(kmer::pack("ACGT", BaseEncoding::kStandard)),
            3u);
  const auto unitigs = graph.unitigs();
  ASSERT_EQ(unitigs.size(), 1u);
  EXPECT_DOUBLE_EQ(unitigs[0].mean_coverage, 3.0);
}

TEST(DeBruijnTest, PureCycleIsOneUnitig) {
  // A circular sequence: every k-mer linear, no start node.
  // "ACGTACGT..." with k=4 cycles through 4 distinct k-mers:
  // ACGT -> CGTA -> GTAC -> TACG -> ACGT.
  const DeBruijnGraph graph = graph_of({"ACGTACGTACG"}, 4);
  const GraphStats stats = graph.stats();
  EXPECT_EQ(stats.nodes, 4u);
  EXPECT_EQ(stats.tips, 0u);
  const auto unitigs = graph.unitigs();
  ASSERT_EQ(unitigs.size(), 1u);
  EXPECT_EQ(unitigs[0].kmers, 4u);
}

TEST(DeBruijnTest, EveryNodeInExactlyOneUnitig) {
  io::GenomeSpec gspec;
  gspec.length = 4'000;
  gspec.seed = 23;
  gspec.repeat_fraction = 0.15;
  gspec.repeat_unit = 300;
  const io::ReadBatch genome = io::generate_genome(gspec);
  const DeBruijnGraph graph = graph_of({genome.reads[0].bases}, 15);

  std::uint64_t unitig_kmers = 0;
  for (const auto& unitig : graph.unitigs()) {
    unitig_kmers += unitig.kmers;
  }
  EXPECT_EQ(unitig_kmers, graph.nodes());
}

TEST(DeBruijnTest, CleanGenomeAssemblesToFewLongUnitigs) {
  // A repeat-free genome's graph is one long path (up to rare random
  // k-mer collisions): N50 should approach the genome length.
  io::GenomeSpec gspec;
  gspec.length = 5'000;
  gspec.seed = 29;
  gspec.repeat_fraction = 0.0;
  const io::ReadBatch genome = io::generate_genome(gspec);
  const DeBruijnGraph graph = graph_of({genome.reads[0].bases}, 21);
  const GraphStats stats = graph.stats();
  EXPECT_LE(stats.unitigs, 5u);
  EXPECT_GT(stats.n50_bases, 2'000u);
}

TEST(DeBruijnTest, RepeatsFragmentTheGraph) {
  io::GenomeSpec clean, repetitive;
  clean.length = repetitive.length = 20'000;
  clean.seed = repetitive.seed = 31;
  repetitive.repeat_fraction = 0.4;
  repetitive.repeat_unit = 400;
  const auto g_clean =
      graph_of({io::generate_genome(clean).reads[0].bases}, 17);
  const auto g_rep =
      graph_of({io::generate_genome(repetitive).reads[0].bases}, 17);
  EXPECT_GT(g_rep.stats().junctions, g_clean.stats().junctions);
  EXPECT_LT(g_rep.stats().n50_bases, g_clean.stats().n50_bases);
}

TEST(DeBruijnTest, BuildsFromPipelineOutput) {
  // End to end: count with the distributed GPU pipeline, build the graph
  // from the global table — the workflow the paper's introduction
  // motivates.
  io::GenomeSpec gspec;
  gspec.length = 3'000;
  gspec.seed = 37;
  io::ReadSpec rspec;
  rspec.coverage = 6.0;
  rspec.mean_read_length = 400;
  rspec.min_read_length = 100;
  rspec.sample_both_strands = false;  // single-strand: graph stays simple
  const io::ReadBatch reads = io::generate_dataset(gspec, rspec);

  DriverOptions options;
  options.nranks = 4;
  const CountResult result = run_distributed_count(reads, options);

  const DeBruijnGraph graph(result.global_counts, options.pipeline.k,
                            options.pipeline.encoding());
  EXPECT_EQ(graph.nodes(), result.total_unique());
  const GraphStats stats = graph.stats();
  EXPECT_GT(stats.n50_bases, 500u);  // coverage should stitch long paths
  // Mean unitig coverage reflects the sequencing depth.
  double covered = 0;
  std::uint64_t kmers = 0;
  for (const auto& unitig : graph.unitigs()) {
    covered += unitig.mean_coverage * static_cast<double>(unitig.kmers);
    kmers += unitig.kmers;
  }
  EXPECT_NEAR(covered / static_cast<double>(kmers), 6.0, 2.5);
}

TEST(DeBruijnTest, RejectsBadInput) {
  EXPECT_THROW(DeBruijnGraph({{0, 0}}, 5, BaseEncoding::kStandard),
               PreconditionError);
  EXPECT_THROW(DeBruijnGraph({}, 1, BaseEncoding::kStandard),
               PreconditionError);
  const DeBruijnGraph graph = graph_of({"ACGTA"}, 3);
  EXPECT_THROW(graph.unitig_sequence(
                   kmer::pack("TTT", BaseEncoding::kStandard)),
               PreconditionError);
}

}  // namespace
}  // namespace dedukt::core
