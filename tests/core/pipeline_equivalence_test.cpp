// The central correctness property of the whole system: all three
// distributed pipelines produce exactly the reference k-mer counts, for any
// rank count, exchange mode and minimizer configuration.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/synthetic.hpp"

namespace dedukt::core {
namespace {

io::ReadBatch test_reads(std::uint64_t seed = 9) {
  io::GenomeSpec gspec;
  gspec.length = 6'000;
  gspec.seed = seed;
  io::ReadSpec rspec;
  rspec.coverage = 4.0;
  rspec.mean_read_length = 500;
  rspec.min_read_length = 60;
  rspec.seed = seed + 1;
  return io::generate_dataset(gspec, rspec);
}

std::map<std::uint64_t, std::uint64_t> as_map(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& counts) {
  return {counts.begin(), counts.end()};
}

std::map<std::uint64_t, std::uint64_t> reference_map(
    const io::ReadBatch& reads, const PipelineConfig& config) {
  std::map<std::uint64_t, std::uint64_t> out;
  reference_count(reads, config)
      .for_each([&](std::uint64_t key, std::uint64_t count) {
        out[key] = count;
      });
  return out;
}

using EquivParam = std::tuple<PipelineKind, int, ExchangeMode>;

class PipelineEquivalence : public ::testing::TestWithParam<EquivParam> {};

TEST_P(PipelineEquivalence, GlobalCountsMatchReference) {
  const auto [kind, nranks, exchange] = GetParam();
  const io::ReadBatch reads = test_reads();

  DriverOptions options;
  options.pipeline.kind = kind;
  options.pipeline.exchange = exchange;
  options.nranks = nranks;
  const CountResult result = run_distributed_count(reads, options);

  EXPECT_EQ(as_map(result.global_counts),
            reference_map(reads, options.pipeline));

  // Work accounting is conserved end-to-end.
  const auto totals = result.totals();
  EXPECT_EQ(totals.kmers_parsed, reads.total_kmers(options.pipeline.k));
  EXPECT_EQ(totals.kmers_received, totals.kmers_parsed);
  EXPECT_EQ(totals.counted_kmers, totals.kmers_parsed);
}

INSTANTIATE_TEST_SUITE_P(
    KindsRanksModes, PipelineEquivalence,
    ::testing::Values(
        EquivParam{PipelineKind::kCpu, 1, ExchangeMode::kStaged},
        EquivParam{PipelineKind::kCpu, 4, ExchangeMode::kStaged},
        EquivParam{PipelineKind::kCpu, 13, ExchangeMode::kStaged},
        EquivParam{PipelineKind::kGpuKmer, 1, ExchangeMode::kStaged},
        EquivParam{PipelineKind::kGpuKmer, 4, ExchangeMode::kStaged},
        EquivParam{PipelineKind::kGpuKmer, 6, ExchangeMode::kGpuDirect},
        EquivParam{PipelineKind::kGpuKmer, 13, ExchangeMode::kStaged},
        EquivParam{PipelineKind::kGpuSupermer, 1, ExchangeMode::kStaged},
        EquivParam{PipelineKind::kGpuSupermer, 4, ExchangeMode::kStaged},
        EquivParam{PipelineKind::kGpuSupermer, 6, ExchangeMode::kGpuDirect},
        EquivParam{PipelineKind::kGpuSupermer, 13, ExchangeMode::kStaged}));

class MinimizerConfigEquivalence
    : public ::testing::TestWithParam<std::tuple<kmer::MinimizerOrder, int>> {
};

TEST_P(MinimizerConfigEquivalence, SupermerPipelineCorrectForAllOrders) {
  const auto [order, m] = GetParam();
  const io::ReadBatch reads = test_reads(77);

  DriverOptions options;
  options.pipeline.kind = PipelineKind::kGpuSupermer;
  options.pipeline.order = order;
  options.pipeline.m = m;
  options.nranks = 5;
  const CountResult result = run_distributed_count(reads, options);
  EXPECT_EQ(as_map(result.global_counts),
            reference_map(reads, options.pipeline));
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndM, MinimizerConfigEquivalence,
    ::testing::Combine(::testing::Values(kmer::MinimizerOrder::kLexicographic,
                                         kmer::MinimizerOrder::kKmc2,
                                         kmer::MinimizerOrder::kRandomized),
                       ::testing::Values(7, 9)));

TEST(PipelineEquivalenceTest, AllThreePipelinesAgreeWithEachOther) {
  const io::ReadBatch reads = test_reads(123);
  std::map<std::uint64_t, std::uint64_t> results[3];
  const PipelineKind kinds[3] = {PipelineKind::kCpu, PipelineKind::kGpuKmer,
                                 PipelineKind::kGpuSupermer};
  for (int i = 0; i < 3; ++i) {
    DriverOptions options;
    options.pipeline.kind = kinds[i];
    options.nranks = 7;
    results[i] = as_map(run_distributed_count(reads, options).global_counts);
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
}

TEST(PipelineEquivalenceTest, CanonicalCpuCountsMatchReference) {
  const io::ReadBatch reads = test_reads(31);
  DriverOptions options;
  options.pipeline.kind = PipelineKind::kCpu;
  options.pipeline.canonical = true;
  options.nranks = 4;
  const CountResult result = run_distributed_count(reads, options);
  EXPECT_EQ(as_map(result.global_counts),
            reference_map(reads, options.pipeline));
}

TEST(PipelineEquivalenceTest, ReadsWithNsAreHandled) {
  io::ReadBatch reads = test_reads(55);
  // Corrupt some reads with N runs.
  for (std::size_t i = 0; i < reads.size(); i += 3) {
    auto& bases = reads.reads[i].bases;
    if (bases.size() > 40) bases.replace(bases.size() / 2, 3, "NNN");
  }
  for (const PipelineKind kind :
       {PipelineKind::kCpu, PipelineKind::kGpuKmer,
        PipelineKind::kGpuSupermer}) {
    DriverOptions options;
    options.pipeline.kind = kind;
    options.nranks = 4;
    const CountResult result = run_distributed_count(reads, options);
    EXPECT_EQ(as_map(result.global_counts),
              reference_map(reads, options.pipeline))
        << to_string(kind);
  }
}

TEST(PipelineEquivalenceTest, EmptyInputProducesEmptyResult) {
  for (const PipelineKind kind :
       {PipelineKind::kCpu, PipelineKind::kGpuKmer,
        PipelineKind::kGpuSupermer}) {
    DriverOptions options;
    options.pipeline.kind = kind;
    options.nranks = 3;
    const CountResult result =
        run_distributed_count(io::ReadBatch{}, options);
    EXPECT_TRUE(result.global_counts.empty()) << to_string(kind);
    EXPECT_EQ(result.totals().kmers_parsed, 0u);
  }
}

TEST(PipelineEquivalenceTest, SupermerReducesBytesOnTheWire) {
  // The headline §IV claim, on real data: supermer exchange ships fewer
  // bytes than k-mer exchange.
  const io::ReadBatch reads = test_reads(88);
  DriverOptions kmer_run;
  kmer_run.pipeline.kind = PipelineKind::kGpuKmer;
  kmer_run.nranks = 6;
  DriverOptions smer_run = kmer_run;
  smer_run.pipeline.kind = PipelineKind::kGpuSupermer;

  const auto kmer_bytes =
      run_distributed_count(reads, kmer_run).total_bytes_exchanged();
  const auto smer_bytes =
      run_distributed_count(reads, smer_run).total_bytes_exchanged();
  EXPECT_LT(smer_bytes, kmer_bytes);
  // The paper reports up to 4x; even small synthetic data clears 1.5x.
  EXPECT_GT(static_cast<double>(kmer_bytes) /
                static_cast<double>(smer_bytes),
            1.5);
}

}  // namespace
}  // namespace dedukt::core
