// Calibration guardrails: the benchmark drivers reproduce the paper's
// figure shapes because the cost models are calibrated (see EXPERIMENTS.md).
// These tests pin the shapes at reduced rank counts so an accidental
// constant change or accounting regression shows up in CI rather than in a
// silently wrong "reproduction".
#include <gtest/gtest.h>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/datasets.hpp"

namespace dedukt::core {
namespace {

/// A 1/40000 H. sapiens at reduced rank counts (48 GPUs vs 336 cores =
/// 8 Summit nodes) — small enough for a unit test, big enough for shapes.
class CalibrationTest : public ::testing::Test {
 protected:
  static constexpr int kNodes = 8;
  static constexpr double kScale = 40'000.0;

  static const CountResult& cpu() {
    static const CountResult result = [] {
      DriverOptions options;
      options.pipeline.kind = PipelineKind::kCpu;
      options.nranks = kNodes * summit::kCoresPerNode;
      options.collect_counts = false;
      return run_distributed_count(reads(), options);
    }();
    return result;
  }

  static const CountResult& gpu() {
    static const CountResult result = [] {
      DriverOptions options;
      options.pipeline.kind = PipelineKind::kGpuKmer;
      options.nranks = kNodes * summit::kGpusPerNode;
      options.collect_counts = false;
      return run_distributed_count(reads(), options);
    }();
    return result;
  }

  static const CountResult& gpu_supermer() {
    static const CountResult result = [] {
      DriverOptions options;
      options.pipeline.kind = PipelineKind::kGpuSupermer;
      options.nranks = kNodes * summit::kGpusPerNode;
      options.collect_counts = false;
      return run_distributed_count(reads(), options);
    }();
    return result;
  }

 private:
  static const io::ReadBatch& reads() {
    static const io::ReadBatch batch = io::make_dataset(
        *io::find_preset("hsapiens54x"),
        static_cast<std::uint64_t>(kScale), 42);
    return batch;
  }
};

TEST_F(CalibrationTest, GpuBeatsCpuByOneToTwoOrdersOfMagnitude) {
  const double cpu_total = cpu().projected_breakdown(kScale).total();
  const double gpu_total = gpu().projected_breakdown(kScale).total();
  const double speedup = cpu_total / gpu_total;
  // Fig. 3 / Fig. 6b: ~100x at 64 nodes; at 8 nodes the per-rank volume is
  // 8x larger, so exchange grows and the ratio sits lower but must stay
  // within the paper's "one to two orders of magnitude".
  EXPECT_GT(speedup, 10.0);
  EXPECT_LT(speedup, 500.0);
}

TEST_F(CalibrationTest, ExchangeDominatesTheGpuRun) {
  const PhaseTimes breakdown = gpu().projected_breakdown(kScale);
  const double share =
      breakdown.get(kPhaseExchange) / breakdown.total();
  // §III-C: communication becomes the bottleneck (up to ~80% at 64 nodes;
  // higher at 8 nodes where each rank moves more bytes).
  EXPECT_GT(share, 0.5);
}

TEST_F(CalibrationTest, CpuRunIsComputeBound) {
  const PhaseTimes breakdown = cpu().projected_breakdown(kScale);
  const double share =
      breakdown.get(kPhaseExchange) / breakdown.total();
  EXPECT_LT(share, 0.2);  // Fig. 3a: parse+count dwarf the exchange
}

TEST_F(CalibrationTest, ExchangeTimesRoughlyEqualAcrossCpuAndGpuRuns) {
  // Fig. 3: same per-node volume through the same node links.
  const double cpu_exchange =
      cpu().projected_breakdown(kScale).get(kPhaseExchange);
  const double gpu_exchange =
      gpu().projected_breakdown(kScale).get(kPhaseExchange);
  EXPECT_GT(cpu_exchange / gpu_exchange, 0.5);
  EXPECT_LT(cpu_exchange / gpu_exchange, 2.5);
}

TEST_F(CalibrationTest, SupermersWinOverall) {
  // Fig. 7: the supermer pipeline beats the k-mer pipeline end to end
  // because it shrinks the dominant exchange phase.
  const double kmer_total = gpu().projected_breakdown(kScale).total();
  const double smer_total =
      gpu_supermer().projected_breakdown(kScale).total();
  EXPECT_LT(smer_total, kmer_total);
  EXPECT_LT(kmer_total / smer_total, 4.0);  // and not absurdly so
}

TEST_F(CalibrationTest, SupermersShrinkWireBytesByPaperFactor) {
  const double reduction =
      static_cast<double>(gpu().total_bytes_exchanged()) /
      static_cast<double>(gpu_supermer().total_bytes_exchanged());
  // Table II / §V-D: ~3.3-4x fewer wire bytes.
  EXPECT_GT(reduction, 2.5);
  EXPECT_LT(reduction, 5.0);
}

TEST_F(CalibrationTest, MinimizerPartitioningIsSkewedKmerHashIsNot) {
  // Table III.
  EXPECT_LT(gpu().load_imbalance(), 1.5);
  EXPECT_GT(gpu_supermer().load_imbalance(), gpu().load_imbalance());
}

}  // namespace
}  // namespace dedukt::core
