#include "dedukt/core/bloom_filter.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dedukt/core/device_hash_table.hpp"
#include "dedukt/core/driver.hpp"
#include "dedukt/io/synthetic.hpp"
#include "dedukt/util/rng.hpp"

namespace dedukt::core {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  gpusim::Device device;
  DeviceBloomFilter bloom(device, 10'000);
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 5'000; ++i) keys.push_back(rng());

  auto d_keys = device.alloc<std::uint64_t>(keys.size());
  device.copy_to_device<std::uint64_t>(keys, d_keys);
  auto d_seen = device.alloc<std::uint8_t>(keys.size(), std::uint8_t{0});

  // First pass inserts everything; second pass must report all present.
  bloom.test_and_insert(d_keys, keys.size(), d_seen);
  bloom.test_and_insert(d_keys, keys.size(), d_seen);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(d_seen[i], 1) << "false negative at " << i;
  }
}

TEST(BloomFilterTest, FirstInsertionReportsUnseenMostly) {
  gpusim::Device device;
  DeviceBloomFilter bloom(device, 20'000, /*bits_per_key=*/12.0);
  Xoshiro256 rng(4);
  std::vector<std::uint64_t> keys;
  std::set<std::uint64_t> distinct;
  while (distinct.size() < 20'000) {
    const std::uint64_t key = rng();
    if (distinct.insert(key).second) keys.push_back(key);
  }
  auto d_keys = device.alloc<std::uint64_t>(keys.size());
  device.copy_to_device<std::uint64_t>(keys, d_keys);
  auto d_seen = device.alloc<std::uint8_t>(keys.size(), std::uint8_t{0});
  bloom.test_and_insert(d_keys, keys.size(), d_seen);

  std::size_t false_positives = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (d_seen[i]) ++false_positives;
  }
  const double rate =
      static_cast<double>(false_positives) / static_cast<double>(keys.size());
  // Average fill while inserting is below the final fill; the measured
  // rate must be below ~2x the final-state estimate and nonzero-ish small.
  EXPECT_LT(rate, 2.0 * bloom.expected_fp_rate(keys.size()) + 0.01);
}

TEST(BloomFilterTest, ExpectedFpRateFormula) {
  gpusim::Device device;
  DeviceBloomFilter bloom(device, 1000, 16.0);
  EXPECT_GT(bloom.expected_fp_rate(1000), 0.0);
  EXPECT_LT(bloom.expected_fp_rate(1000), 0.01);
  EXPECT_LT(bloom.expected_fp_rate(100), bloom.expected_fp_rate(10'000));
}

TEST(BloomFilterTest, BitsArePowerOfTwo) {
  gpusim::Device device;
  DeviceBloomFilter bloom(device, 1000, 12.0);
  EXPECT_EQ(bloom.bits() & (bloom.bits() - 1), 0u);
  EXPECT_GE(bloom.bits(), 12'000u);
}

TEST(FilteredCountTest, SingletonsSuppressedSurvivorsExact) {
  gpusim::Device device;
  Xoshiro256 rng(5);
  // 2000 distinct keys: half singletons, half with multiplicity 2-6.
  std::vector<std::uint64_t> stream;
  std::map<std::uint64_t, std::uint32_t> truth;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.below(1u << 30);
    const std::uint32_t multiplicity =
        (i % 2 == 0) ? 1 : 2 + static_cast<std::uint32_t>(rng.below(5));
    truth[key] += multiplicity;
    for (std::uint32_t c = 0; c < multiplicity; ++c) stream.push_back(key);
  }
  auto d_stream = device.alloc<std::uint64_t>(stream.size());
  device.copy_to_device<std::uint64_t>(stream, d_stream);

  DeviceHashTable table(device, truth.size());
  // Large filter => negligible false positives in this test.
  DeviceBloomFilter bloom(device, truth.size(), 24.0);
  table.count_kmers_filtered(d_stream, stream.size(), bloom);

  std::map<std::uint64_t, std::uint32_t> counted;
  for (const auto& [key, count] : table.to_host()) counted[key] = count;

  std::size_t surviving_singletons = 0;
  for (const auto& [key, multiplicity] : truth) {
    if (multiplicity == 1) {
      if (counted.count(key)) ++surviving_singletons;
    } else {
      ASSERT_TRUE(counted.count(key)) << "lost key with count "
                                      << multiplicity;
      // Exact modulo a possible +1 from a false positive.
      EXPECT_GE(counted[key], multiplicity);
      EXPECT_LE(counted[key], multiplicity + 1);
    }
  }
  // With 24 bits/key nearly all singletons are suppressed.
  EXPECT_LT(surviving_singletons, 10u);
}

TEST(FilteredCountTest, SupermerPathMatchesKmerPath) {
  gpusim::Device device;
  // Supermer "AACCGGTT" (k=4) and the equivalent flat k-mer stream,
  // repeated 3 times, must produce identical filtered tables when the
  // bloom processes occurrences in the same order.
  const kmer::KmerCode bases =
      kmer::pack("AACCGGTT", io::BaseEncoding::kStandard);
  std::vector<std::uint64_t> words(3, bases);
  std::vector<std::uint8_t> lens(3, 8);
  auto d_words = device.alloc<std::uint64_t>(3);
  auto d_lens = device.alloc<std::uint8_t>(3);
  device.copy_to_device<std::uint64_t>(words, d_words);
  device.copy_to_device<std::uint8_t>(lens, d_lens);

  DeviceHashTable smer_table(device, 16);
  DeviceBloomFilter smer_bloom(device, 16, 24.0);
  smer_table.count_supermers_filtered(d_words, d_lens, 3, 4, smer_bloom);

  std::vector<std::uint64_t> flat;
  for (int rep = 0; rep < 3; ++rep) {
    for (const auto code :
         kmer::extract_kmers("AACCGGTT", 4, io::BaseEncoding::kStandard)) {
      flat.push_back(code);
    }
  }
  auto d_flat = device.alloc<std::uint64_t>(flat.size());
  device.copy_to_device<std::uint64_t>(flat, d_flat);
  DeviceHashTable kmer_table(device, 16);
  DeviceBloomFilter kmer_bloom(device, 16, 24.0);
  kmer_table.count_kmers_filtered(d_flat, flat.size(), kmer_bloom);

  std::map<std::uint64_t, std::uint32_t> a, b;
  for (const auto& [key, count] : smer_table.to_host()) a[key] = count;
  for (const auto& [key, count] : kmer_table.to_host()) b[key] = count;
  EXPECT_EQ(a, b);
}

TEST(FilteredPipelineTest, SuppressesSingletonsEndToEnd) {
  // Reads with sequencing errors: error k-mers are (mostly) singletons and
  // should vanish from the result.
  io::GenomeSpec gspec;
  gspec.length = 10'000;
  gspec.seed = 9;
  io::ReadSpec rspec;
  rspec.coverage = 8.0;
  rspec.mean_read_length = 600;
  rspec.min_read_length = 100;
  rspec.error_rate = 0.005;
  const io::ReadBatch reads = io::generate_dataset(gspec, rspec);

  DriverOptions plain;
  plain.pipeline.kind = PipelineKind::kGpuSupermer;
  plain.nranks = 4;
  DriverOptions filtered = plain;
  filtered.pipeline.filter_singletons = true;

  const CountResult unfiltered = run_distributed_count(reads, plain);
  const CountResult with_filter = run_distributed_count(reads, filtered);

  std::map<std::uint64_t, std::uint64_t> truth(
      unfiltered.global_counts.begin(), unfiltered.global_counts.end());
  std::map<std::uint64_t, std::uint64_t> got(
      with_filter.global_counts.begin(), with_filter.global_counts.end());

  std::uint64_t truth_singletons = 0, surviving_singletons = 0;
  for (const auto& [key, count] : truth) {
    if (count == 1) {
      ++truth_singletons;
      if (got.count(key)) ++surviving_singletons;
    } else {
      ASSERT_TRUE(got.count(key));
      EXPECT_GE(got[key], count);
      EXPECT_LE(got[key], count + 1);
    }
  }
  ASSERT_GT(truth_singletons, 100u);  // the error model injected singletons
  EXPECT_LT(surviving_singletons, truth_singletons / 10);
  EXPECT_LT(with_filter.total_unique(), unfiltered.total_unique());
}

TEST(FilteredPipelineTest, ConfigRejectsUnsupportedCombos) {
  PipelineConfig config;
  config.filter_singletons = true;
  config.kind = PipelineKind::kCpu;
  EXPECT_THROW(config.validate(), PreconditionError);
  config.kind = PipelineKind::kGpuKmer;
  config.max_kmers_per_round = 100;
  EXPECT_THROW(config.validate(), PreconditionError);
  config.max_kmers_per_round = 0;
  EXPECT_NO_THROW(config.validate());
}

}  // namespace
}  // namespace dedukt::core
