// TraceSession integration tests: deterministic multi-rank merge of the
// Chrome trace, metrics windows, and bit-equality of the trace-derived
// breakdowns against CountResult's private accumulation.
#include "dedukt/trace/session.hpp"

#include <gtest/gtest.h>

#include <string>

#include "dedukt/core/driver.hpp"
#include "dedukt/core/result.hpp"
#include "dedukt/io/datasets.hpp"
#include "dedukt/util/thread_pool.hpp"

namespace dedukt::trace {
namespace {

io::ReadBatch preset_reads() {
  return io::make_dataset(*io::find_preset("ecoli30x"), /*scale=*/4000,
                          /*seed=*/7);
}

core::CountResult run_driver(const io::ReadBatch& reads,
                             core::PipelineKind kind) {
  core::DriverOptions options;
  options.pipeline.kind = kind;
  options.nranks = 4;
  options.collect_counts = false;
  return core::run_distributed_count(reads, options);
}

/// Enables an in-memory session, restores disabled + pool size 1 after.
class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceSession::instance().enable("");
    TraceSession::instance().reset();
  }
  void TearDown() override {
    TraceSession::instance().disable();
    util::ThreadPool::set_global_threads(1);
  }
};

TEST_F(SessionTest, ChromeJsonIsByteIdenticalAcrossRepeatedRuns) {
  const io::ReadBatch reads = preset_reads();
  auto& session = TraceSession::instance();

  (void)run_driver(reads, core::PipelineKind::kGpuSupermer);
  const std::string first = session.chrome_json();
  session.reset();
  (void)run_driver(reads, core::PipelineKind::kGpuSupermer);
  const std::string second = session.chrome_json();

  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"traceEvents\""), std::string::npos);
}

TEST_F(SessionTest, ChromeJsonIsByteIdenticalAcrossPoolSizes) {
  const io::ReadBatch reads = preset_reads();
  auto& session = TraceSession::instance();

  util::ThreadPool::set_global_threads(1);
  (void)run_driver(reads, core::PipelineKind::kGpuKmer);
  const std::string serial = session.chrome_json();
  const std::string serial_metrics = session.metrics().to_json(
      /*include_wall=*/false);

  session.reset();
  util::ThreadPool::set_global_threads(4);
  (void)run_driver(reads, core::PipelineKind::kGpuKmer);
  EXPECT_EQ(serial, session.chrome_json());
  EXPECT_EQ(serial_metrics,
            session.metrics().to_json(/*include_wall=*/false));
}

TEST_F(SessionTest, ChromeJsonCarriesRankAndDeviceTracks) {
  const io::ReadBatch reads = preset_reads();
  (void)run_driver(reads, core::PipelineKind::kGpuSupermer);
  const std::string json = TraceSession::instance().chrome_json();

  // One metadata-named track per simulated rank (pid 0) and simulated
  // device (pid 1), and spans from all three instrumented layers.
  EXPECT_NE(json.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 3\""), std::string::npos);
  EXPECT_NE(json.find("\"gpu 0\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"collective\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"transfer\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"app\""), std::string::npos);
}

TEST_F(SessionTest, MetricsBreakdownsMatchCountResultBitForBit) {
  const io::ReadBatch reads = preset_reads();
  auto& session = TraceSession::instance();

  for (const auto kind : {core::PipelineKind::kCpu,
                          core::PipelineKind::kGpuKmer,
                          core::PipelineKind::kGpuSupermer}) {
    SCOPED_TRACE(testing::Message()
                 << "pipeline " << static_cast<int>(kind));
    const SessionMark mark = session.mark();
    const core::CountResult result = run_driver(reads, kind);
    const MetricsReport metrics = session.metrics(mark);

    // The trace subsystem subsumes CountResult's breakdown logic: the
    // per-phase maxima and the volume-scaled projection must be *bit*
    // identical, not merely close.
    const PhaseTimes from_result = result.modeled_breakdown();
    const PhaseTimes from_trace = metrics.modeled_breakdown();
    for (const char* phase : core::kPhaseOrder) {
      EXPECT_EQ(from_result.get(phase), from_trace.get(phase)) << phase;
    }
    const PhaseTimes projected_result = result.projected_breakdown(400.0);
    const PhaseTimes projected_trace = metrics.projected_breakdown(400.0);
    for (const char* phase : core::kPhaseOrder) {
      EXPECT_EQ(projected_result.get(phase), projected_trace.get(phase))
          << phase;
    }
    EXPECT_EQ(result.modeled_total_seconds(),
              metrics.modeled_total_seconds());
  }
}

TEST_F(SessionTest, MarksWindowMetricsToOneRun) {
  const io::ReadBatch reads = preset_reads();
  auto& session = TraceSession::instance();

  (void)run_driver(reads, core::PipelineKind::kGpuKmer);
  const MetricsReport whole_first = session.metrics();

  const SessionMark mark = session.mark();
  const core::CountResult second =
      run_driver(reads, core::PipelineKind::kGpuKmer);
  const MetricsReport window = session.metrics(mark);

  // The window sees exactly the second run: same breakdown as the first
  // (identical input), and counter deltas for one run, not two.
  for (const char* phase : core::kPhaseOrder) {
    EXPECT_EQ(window.modeled_breakdown().get(phase),
              second.modeled_breakdown().get(phase))
        << phase;
  }
  std::uint64_t whole_bytes = 0, window_bytes = 0;
  for (const auto& rank : whole_first.ranks) {
    auto it = rank.counters.find("comm.bytes_sent");
    if (it != rank.counters.end()) whole_bytes += it->second;
  }
  for (const auto& rank : window.ranks) {
    auto it = rank.counters.find("comm.bytes_sent");
    if (it != rank.counters.end()) window_bytes += it->second;
  }
  EXPECT_GT(window_bytes, 0u);
  EXPECT_EQ(window_bytes, whole_bytes);
}

TEST_F(SessionTest, KernelTotalsCoverTheLaunchedKernels) {
  const io::ReadBatch reads = preset_reads();
  auto& session = TraceSession::instance();
  const SessionMark mark = session.mark();
  (void)run_driver(reads, core::PipelineKind::kGpuSupermer);
  const auto kernels = session.metrics(mark).kernel_totals();
  ASSERT_TRUE(kernels.contains("supermer_count"));
  ASSERT_TRUE(kernels.contains("hash_count_supermers"));
  EXPECT_GT(kernels.at("supermer_count").launches, 0u);
  EXPECT_GT(kernels.at("supermer_count").modeled_seconds, 0.0);
}

TEST(TraceSessionPaths, MetricsPathDerivesFromChromePath) {
  EXPECT_EQ(TraceSession::metrics_path_for("out/trace.json"),
            "out/trace.metrics.json");
  EXPECT_EQ(TraceSession::metrics_path_for("trace"), "trace.metrics.json");
}

}  // namespace
}  // namespace dedukt::trace
