// The zero-overhead-when-disabled contract: with no session recording,
// the instrumentation entry points must not touch the heap, and a traced
// run must produce bit-identical results to an untraced one.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "dedukt/core/driver.hpp"
#include "dedukt/io/datasets.hpp"
#include "dedukt/trace/trace.hpp"

namespace {

// TU-local global operator new/delete that count allocations while the
// flag is up. Counting is scoped tightly around the measured region, so
// the rest of the binary pays only a relaxed load.
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dedukt::trace {
namespace {

TEST(DisabledTracing, EntryPointsAllocateNothing) {
  TraceSession::instance().disable();
  ASSERT_FALSE(enabled());

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  {
    RankTraceScope scope(3);
    ScopedSpan span(kCategoryPhase, "phase");
    EXPECT_FALSE(span.active());
    span.set_modeled_seconds(1.0);
    span.set_modeled_volume_seconds(0.5);
    span.arg_u64("bytes", 4096);
    span.arg_str("note", "unused");
    counter("comm.bytes_sent", 128);
    {
      ScopedSpan nested(kCategoryKernel, "kernel", Track::kDevice);
      EXPECT_FALSE(nested.active());
    }
  }
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0u);
}

TEST(DisabledTracing, TracedRunMatchesUntracedRunBitForBit) {
  const io::ReadBatch reads = io::make_dataset(
      *io::find_preset("ecoli30x"), /*scale=*/4000, /*seed=*/7);
  core::DriverOptions options;
  options.pipeline.kind = core::PipelineKind::kGpuSupermer;
  options.nranks = 4;

  TraceSession::instance().disable();
  const core::CountResult untraced =
      core::run_distributed_count(reads, options);

  TraceSession::instance().enable("");
  TraceSession::instance().reset();
  const core::CountResult traced =
      core::run_distributed_count(reads, options);
  TraceSession::instance().disable();

  // Recording spans must not perturb the simulation: identical counts and
  // bit-identical modeled times either way.
  EXPECT_EQ(untraced.global_counts, traced.global_counts);
  ASSERT_EQ(untraced.ranks.size(), traced.ranks.size());
  for (std::size_t r = 0; r < untraced.ranks.size(); ++r) {
    EXPECT_EQ(untraced.ranks[r].modeled.phases(),
              traced.ranks[r].modeled.phases());
    EXPECT_EQ(untraced.ranks[r].counted_kmers, traced.ranks[r].counted_kmers);
    EXPECT_EQ(untraced.ranks[r].bytes_sent, traced.ranks[r].bytes_sent);
  }
}

}  // namespace
}  // namespace dedukt::trace
