// SpanRecorder / ScopedSpan unit tests: RAII nesting, the modeled-time
// cursor, pinned durations, counters, and span arguments.
#include "dedukt/trace/recorder.hpp"

#include <gtest/gtest.h>

#include "dedukt/trace/session.hpp"
#include "dedukt/util/error.hpp"

namespace dedukt::trace {
namespace {

/// Enables an in-memory session for the test and restores the disabled
/// default afterwards, so tests in this binary cannot leak trace state.
class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceSession::instance().enable("");
    TraceSession::instance().reset();
  }
  void TearDown() override { TraceSession::instance().disable(); }
};

TEST_F(RecorderTest, ScopedSpansNestAndCloseInLifoOrder) {
  {
    ScopedSpan outer(kCategoryPhase, "outer");
    ASSERT_TRUE(outer.active());
    {
      ScopedSpan inner(kCategoryKernel, "inner", Track::kDevice);
      inner.set_modeled_seconds(0.5);
    }
    {
      ScopedSpan inner2(kCategoryCollective, "inner2");
      inner2.set_modeled_seconds(0.25);
    }
  }
  const auto spans =
      TraceSession::instance().recorder(SpanRecorder::kMainRank)
          .spans_snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Record order is open order: outer first, then the two children.
  EXPECT_STREQ(spans[0].name.c_str(), "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].depth, 1);
  EXPECT_EQ(spans[1].track, Track::kDevice);
  // The leaf spans pinned their durations and advanced the cursor; the
  // unpinned parent covers exactly what its children put on the clock.
  EXPECT_DOUBLE_EQ(spans[1].modeled_seconds, 0.5);
  EXPECT_DOUBLE_EQ(spans[2].modeled_seconds, 0.25);
  EXPECT_DOUBLE_EQ(spans[2].modeled_start, 0.5);
  EXPECT_DOUBLE_EQ(spans[0].modeled_seconds, 0.75);
}

TEST_F(RecorderTest, PinnedDurationIsStoredVerbatimAnywhereOnTheCursor) {
  // The same pinned value must be recorded bit-identically whether the
  // span runs at cursor zero or far into the session — aggregated metrics
  // windows rely on it.
  const double pinned = 0.00020756;
  auto& recorder = TraceSession::instance().recorder(0);
  const auto early = recorder.open_span(kCategoryKernel, "k", Track::kDevice);
  recorder.close_span(early, 0.0, pinned, 0.0);
  recorder.advance_modeled(123.456789);
  const auto late = recorder.open_span(kCategoryKernel, "k", Track::kDevice);
  recorder.close_span(late, 0.0, pinned, 0.0);

  const auto spans = recorder.spans_snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].modeled_seconds, spans[1].modeled_seconds);
  EXPECT_EQ(spans[0].modeled_seconds, pinned);
}

TEST_F(RecorderTest, PinnedParentExtendsWhenChildrenOvershoot) {
  auto& recorder = TraceSession::instance().recorder(1);
  const auto parent = recorder.open_span(kCategoryPhase, "p", Track::kRank);
  const auto child = recorder.open_span(kCategoryKernel, "c", Track::kDevice);
  recorder.close_span(child, 0.0, 2.0, 0.0);
  recorder.close_span(parent, 0.0, 1.0, 0.0);  // pin below the child
  const auto spans = recorder.spans_snapshot();
  EXPECT_DOUBLE_EQ(spans[0].modeled_seconds, 2.0);
  EXPECT_DOUBLE_EQ(recorder.modeled_now(), 2.0);
}

TEST_F(RecorderTest, CloseOutOfLifoOrderThrows) {
  auto& recorder = TraceSession::instance().recorder(2);
  const auto first = recorder.open_span(kCategoryPhase, "a", Track::kRank);
  const auto second = recorder.open_span(kCategoryPhase, "b", Track::kRank);
  EXPECT_THROW(recorder.close_span(first, 0.0, -1.0, 0.0), Error);
  recorder.close_span(second, 0.0, -1.0, 0.0);
  recorder.close_span(first, 0.0, -1.0, 0.0);
}

TEST_F(RecorderTest, CountersAccumulateAcrossCalls) {
  counter("comm.bytes_sent", 100);
  counter("comm.bytes_sent", 23);
  counter("device.h2d_bytes", 7);
  const auto counters =
      TraceSession::instance().recorder(SpanRecorder::kMainRank)
          .counters_snapshot();
  EXPECT_EQ(counters.at("comm.bytes_sent"), 123u);
  EXPECT_EQ(counters.at("device.h2d_bytes"), 7u);
}

TEST_F(RecorderTest, ArgsRenderAsJson) {
  {
    ScopedSpan span(kCategoryCollective, "alltoallv");
    span.arg_u64("bytes", 4096);
    span.arg_str("note", "a\"b");
  }
  const auto spans =
      TraceSession::instance().recorder(SpanRecorder::kMainRank)
          .spans_snapshot();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].args.size(), 2u);
  EXPECT_EQ(spans[0].args[0].key, "bytes");
  EXPECT_EQ(spans[0].args[0].json, "4096");
  EXPECT_EQ(spans[0].args[1].json, "\"a\\\"b\"");
}

TEST_F(RecorderTest, RankTraceScopeRoutesSpansToTheRankRecorder) {
  {
    RankTraceScope scope(5);
    ScopedSpan span(kCategoryPhase, "on-rank-5");
  }
  ScopedSpan main_span(kCategoryPhase, "on-main");
  EXPECT_EQ(TraceSession::instance().recorder(5).span_count(), 1u);
  const auto spans = TraceSession::instance().recorder(5).spans_snapshot();
  EXPECT_STREQ(spans[0].name.c_str(), "on-rank-5");
}

TEST_F(RecorderTest, ResetDropsSpansAndRewindsTheCursor) {
  auto& recorder = TraceSession::instance().recorder(3);
  const auto handle = recorder.open_span(kCategoryPhase, "x", Track::kRank);
  recorder.close_span(handle, 0.0, 1.5, 0.0);
  recorder.add_counter("c", 1);
  EXPECT_DOUBLE_EQ(recorder.modeled_now(), 1.5);
  recorder.reset();
  EXPECT_EQ(recorder.span_count(), 0u);
  EXPECT_TRUE(recorder.counters_snapshot().empty());
  EXPECT_DOUBLE_EQ(recorder.modeled_now(), 0.0);
}

}  // namespace
}  // namespace dedukt::trace
