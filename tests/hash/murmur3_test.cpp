#include "dedukt/hash/murmur3.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

namespace dedukt::hash {
namespace {

std::uint32_t h32(const std::string& s, std::uint32_t seed = 0) {
  return murmur3_x86_32(s.data(), s.size(), seed);
}

// Reference vectors from Austin Appleby's reference implementation.
TEST(Murmur3x86_32Test, ReferenceVectors) {
  EXPECT_EQ(h32("", 0), 0u);
  EXPECT_EQ(h32("", 1), 0x514E28B7u);
  EXPECT_EQ(h32("", 0xffffffffu), 0x81F16F39u);
  EXPECT_EQ(h32("test", 0), 0xba6bd213u);
  EXPECT_EQ(h32("Hello, world!", 0), 0xc0363e43u);
}

TEST(Murmur3x86_32Test, AllTailLengthsDiffer) {
  // Exercises every switch case of the tail handling.
  const std::string base = "abcdefghijklmnopqrstuvwxyz";
  std::set<std::uint32_t> seen;
  for (std::size_t len = 0; len <= 17; ++len) {
    seen.insert(h32(base.substr(0, len)));
  }
  EXPECT_EQ(seen.size(), 18u);
}

TEST(Murmur3x86_32Test, SeedChangesHash) {
  EXPECT_NE(h32("genomics", 0), h32("genomics", 1));
}

TEST(Murmur3x86_32Test, AlignmentIndependent) {
  // Hash must not depend on buffer alignment (portable loads).
  alignas(8) char buf[32];
  const char* msg = "ACGTACGTACGTACG";
  std::memcpy(buf + 1, msg, 15);
  EXPECT_EQ(murmur3_x86_32(buf + 1, 15, 7),
            murmur3_x86_32(msg, 15, 7));
}

TEST(Murmur3x64_128Test, EmptyWithZeroSeedIsZero) {
  const auto [h1, h2] = murmur3_x64_128("", 0, 0);
  EXPECT_EQ(h1, 0u);
  EXPECT_EQ(h2, 0u);
}

TEST(Murmur3x64_128Test, Deterministic) {
  const std::string s = "The quick brown fox jumps over the lazy dog";
  const auto a = murmur3_x64_128(s.data(), s.size(), 3);
  const auto b = murmur3_x64_128(s.data(), s.size(), 3);
  EXPECT_EQ(a, b);
}

TEST(Murmur3x64_128Test, AllTailLengthsDiffer) {
  const std::string base = "abcdefghijklmnopqrstuvwxyzABCDEF";
  std::set<std::uint64_t> seen;
  for (std::size_t len = 0; len <= 33; ++len) {
    seen.insert(murmur3_x64_128(base.data(), len, 0).first);
  }
  EXPECT_EQ(seen.size(), 34u);
}

TEST(Fmix64Test, ZeroMapsToZero) { EXPECT_EQ(fmix64(0), 0u); }

TEST(Fmix64Test, IsBijectiveOnSample) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 4096; ++x) outputs.insert(fmix64(x));
  EXPECT_EQ(outputs.size(), 4096u);
}

TEST(HashU64Test, SeedSeparatesFunctions) {
  int collisions = 0;
  for (std::uint64_t x = 0; x < 1000; ++x) {
    if (hash_u64(x, 1) == hash_u64(x, 2)) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(ToPartitionTest, StaysInRange) {
  for (std::uint32_t parts : {1u, 2u, 3u, 7u, 384u}) {
    for (std::uint64_t x = 0; x < 1000; ++x) {
      EXPECT_LT(to_partition(hash_u64(x), parts), parts);
    }
  }
}

TEST(ToPartitionTest, RoughlyUniform) {
  constexpr std::uint32_t kParts = 16;
  constexpr int kKeys = 64000;
  std::vector<int> buckets(kParts, 0);
  for (std::uint64_t x = 0; x < kKeys; ++x) {
    ++buckets[to_partition(hash_u64(x), kParts)];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, kKeys / kParts, kKeys / kParts / 5);
  }
}

TEST(ToPartitionTest, SinglePartitionAlwaysZero) {
  for (std::uint64_t x = 0; x < 100; ++x) {
    EXPECT_EQ(to_partition(hash_u64(x * 1234567), 1), 0u);
  }
}

}  // namespace
}  // namespace dedukt::hash
