// Block-parallel Device::launch: simulated results and priced counters must
// not depend on the host pool size.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "dedukt/gpusim/device.hpp"
#include "dedukt/util/thread_pool.hpp"

namespace dedukt::gpusim {
namespace {

/// Restores the shared pool to sequential when a test ends, whatever
/// happened in between.
struct PoolGuard {
  ~PoolGuard() { util::ThreadPool::set_global_threads(1); }
};

LaunchStats histogram_launch(std::vector<std::uint64_t>& bins,
                             std::uint32_t grid_dim,
                             std::uint32_t block_dim) {
  Device device;
  return device.launch(grid_dim, block_dim, [&](ThreadCtx& ctx) {
    // Contended atomic adds — the hash-table-count access pattern.
    std::atomic_ref<std::uint64_t> bin(bins[ctx.global_id() % bins.size()]);
    bin.fetch_add(1, std::memory_order_relaxed);
    ctx.count_atomic();
    ctx.count_gmem_write(sizeof(std::uint64_t));
    ctx.count_ops(2);
  });
}

TEST(ParallelLaunchTest, ResultsAndCountersIdenticalAcrossPoolSizes) {
  PoolGuard guard;
  constexpr std::uint32_t kGrid = 37;   // deliberately not a multiple of
  constexpr std::uint32_t kBlock = 64;  // any pool's range count

  util::ThreadPool::set_global_threads(1);
  std::vector<std::uint64_t> sequential_bins(101, 0);
  const LaunchStats sequential =
      histogram_launch(sequential_bins, kGrid, kBlock);

  for (const unsigned threads : {2u, 3u, 8u}) {
    util::ThreadPool::set_global_threads(threads);
    std::vector<std::uint64_t> bins(101, 0);
    const LaunchStats stats = histogram_launch(bins, kGrid, kBlock);

    EXPECT_EQ(bins, sequential_bins) << threads << " threads";
    EXPECT_EQ(stats.counters.threads, sequential.counters.threads);
    EXPECT_EQ(stats.counters.gmem_read_bytes,
              sequential.counters.gmem_read_bytes);
    EXPECT_EQ(stats.counters.gmem_write_bytes,
              sequential.counters.gmem_write_bytes);
    EXPECT_EQ(stats.counters.atomics, sequential.counters.atomics);
    EXPECT_EQ(stats.counters.ops, sequential.counters.ops);
    EXPECT_EQ(stats.modeled_seconds, sequential.modeled_seconds)
        << "modeled time must be bit-identical, got a drift at " << threads
        << " threads";
  }
}

TEST(ParallelLaunchTest, EverySimulatedThreadRunsExactlyOnce) {
  PoolGuard guard;
  util::ThreadPool::set_global_threads(8);
  constexpr std::uint32_t kGrid = 53;
  constexpr std::uint32_t kBlock = 32;
  std::vector<std::uint64_t> visits(kGrid * kBlock, 0);

  Device device;
  device.launch(kGrid, kBlock, [&](ThreadCtx& ctx) {
    std::atomic_ref<std::uint64_t> slot(visits[ctx.global_id()]);
    slot.fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i], 1u) << "global thread " << i;
  }
}

TEST(ParallelLaunchTest, KernelExceptionPropagatesFromWorkers) {
  PoolGuard guard;
  util::ThreadPool::set_global_threads(4);
  Device device;
  EXPECT_THROW(device.launch(64, 32,
                             [&](ThreadCtx& ctx) {
                               if (ctx.global_id() == 777) {
                                 throw std::runtime_error("kernel fault");
                               }
                             }),
               std::runtime_error);
  // The device (and pool) stay usable after a faulted launch.
  std::atomic<std::uint64_t> ran{0};
  device.launch(4, 8, [&](ThreadCtx&) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 32u);
}

TEST(ParallelLaunchTest, TimelineAccumulationMatchesSequential) {
  PoolGuard guard;

  auto run = [](unsigned threads) {
    util::ThreadPool::set_global_threads(threads);
    Device device;
    std::vector<std::uint64_t> bins(17, 0);
    for (int i = 0; i < 5; ++i) {
      device.launch(19 + i, 64, [&](ThreadCtx& ctx) {
        std::atomic_ref<std::uint64_t> bin(bins[ctx.global_id() % 17]);
        bin.fetch_add(1, std::memory_order_relaxed);
        ctx.count_gmem_read(8);
        ctx.count_ops(1);
      });
    }
    return device.timeline();
  };

  const DeviceTimeline sequential = run(1);
  const DeviceTimeline pooled = run(4);
  EXPECT_EQ(pooled.launches, sequential.launches);
  EXPECT_EQ(pooled.kernel_seconds, sequential.kernel_seconds);
  EXPECT_EQ(pooled.volume_seconds, sequential.volume_seconds);
}

}  // namespace
}  // namespace dedukt::gpusim
