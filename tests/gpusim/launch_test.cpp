#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "dedukt/gpusim/device.hpp"
#include "dedukt/util/error.hpp"

namespace dedukt::gpusim {
namespace {

TEST(LaunchTest, EveryThreadRunsOnce) {
  Device device;
  auto flags = device.alloc<std::uint32_t>(1024, 0u);
  auto* data = flags.data();
  device.launch(4, 256, [=](ThreadCtx& ctx) {
    data[ctx.global_id()] += 1;
  });
  for (std::size_t i = 0; i < 1024; ++i) EXPECT_EQ(flags[i], 1u);
}

TEST(LaunchTest, ThreadIdsAreConsistent) {
  Device device;
  device.launch(3, 64, [](ThreadCtx& ctx) {
    EXPECT_LT(ctx.block_idx(), 3u);
    EXPECT_LT(ctx.thread_idx(), 64u);
    EXPECT_EQ(ctx.block_dim(), 64u);
    EXPECT_EQ(ctx.grid_dim(), 3u);
    EXPECT_EQ(ctx.global_id(),
              static_cast<std::uint64_t>(ctx.block_idx()) * 64 +
                  ctx.thread_idx());
    EXPECT_EQ(ctx.global_size(), 192u);
  });
}

TEST(LaunchTest, CountersAggregateAcrossThreads) {
  Device device;
  const auto stats = device.launch(2, 32, [](ThreadCtx& ctx) {
    ctx.count_gmem_read(8);
    ctx.count_gmem_write(4);
    ctx.count_atomic();
    ctx.count_ops(3);
  });
  EXPECT_EQ(stats.counters.threads, 64u);
  EXPECT_EQ(stats.counters.gmem_read_bytes, 64u * 8);
  EXPECT_EQ(stats.counters.gmem_write_bytes, 64u * 4);
  EXPECT_EQ(stats.counters.atomics, 64u);
  EXPECT_EQ(stats.counters.ops, 64u * 3);
}

TEST(LaunchTest, ModeledTimeAccumulatesOnTimeline) {
  Device device;
  const double before = device.timeline().kernel_seconds;
  device.launch(1, 32, [](ThreadCtx& ctx) { ctx.count_ops(1000); });
  EXPECT_GT(device.timeline().kernel_seconds, before);
  EXPECT_EQ(device.timeline().launches, 1u);
}

TEST(LaunchTest, AtomicsWorkUnderSimulation) {
  Device device;
  auto counter = device.alloc<std::uint32_t>(1, 0u);
  auto* p = counter.data();
  device.launch(8, 128, [=](ThreadCtx&) {
    std::atomic_ref<std::uint32_t>(*p).fetch_add(1,
                                                 std::memory_order_relaxed);
  });
  EXPECT_EQ(counter[0], 8u * 128u);
}

TEST(LaunchTest, RejectsBadConfigurations) {
  Device device;
  EXPECT_THROW(device.launch(0, 32, [](ThreadCtx&) {}), PreconditionError);
  EXPECT_THROW(device.launch(1, 0, [](ThreadCtx&) {}), PreconditionError);
  EXPECT_THROW(device.launch(1, 2048, [](ThreadCtx&) {}), PreconditionError);
}

TEST(LaunchTest, LaunchStatsIncludeWallTime) {
  Device device;
  const auto stats = device.launch(1, 1, [](ThreadCtx&) {});
  EXPECT_GE(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.modeled_seconds, 0.0);  // at least launch overhead
}

TEST(LaunchCountersTest, MergeSums) {
  LaunchCounters a, b;
  a.threads = 1;
  a.ops = 10;
  b.threads = 2;
  b.gmem_read_bytes = 5;
  b.atomics = 7;
  a.merge(b);
  EXPECT_EQ(a.threads, 3u);
  EXPECT_EQ(a.ops, 10u);
  EXPECT_EQ(a.gmem_read_bytes, 5u);
  EXPECT_EQ(a.atomics, 7u);
}

}  // namespace
}  // namespace dedukt::gpusim
