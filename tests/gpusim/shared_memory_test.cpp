// Phased launches and block-scoped shared memory: ctx.shared buffers must
// behave like static __shared__ arrays (persist across phases, block
// private), charges must land in the smem counters and the smem roofline
// terms, and both must be identical for every DEDUKT_SIM_THREADS.
#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dedukt/gpusim/device.hpp"
#include "dedukt/util/error.hpp"
#include "dedukt/util/thread_pool.hpp"

namespace dedukt::gpusim {
namespace {

TEST(SharedMemoryTest, BufferPersistsAcrossPhasesAndIsBlockPrivate) {
  Device device;
  constexpr std::uint32_t kGrid = 8;
  constexpr std::uint32_t kBlock = 32;
  auto d_out = device.alloc<std::uint64_t>(kGrid);

  // Phase 0: every thread adds its thread_idx into a shared accumulator.
  // Phase 1: thread 0 writes the block's sum to global memory. A correct
  // result requires the buffer to survive the phase barrier and to be
  // private per block.
  std::uint64_t* out = d_out.data();
  device.launch("block_sum", kGrid, kBlock, /*phases=*/2,
                [=](ThreadCtx& ctx) {
    std::uint64_t* acc = ctx.shared<std::uint64_t>(1);
    if (ctx.phase() == 0) {
      acc[0] += ctx.thread_idx() + ctx.block_idx();
    } else if (ctx.thread_idx() == 0) {
      out[ctx.block_idx()] = acc[0];
    }
  });

  const std::uint64_t base = kBlock * (kBlock - 1) / 2;
  for (std::uint32_t b = 0; b < kGrid; ++b) {
    EXPECT_EQ(d_out.data()[b], base + static_cast<std::uint64_t>(b) * kBlock);
  }
}

TEST(SharedMemoryTest, FillInitializerAndValueInitBothApply) {
  Device device;
  auto d_ok = device.alloc<std::uint32_t>(1);
  std::uint32_t* ok = d_ok.data();
  device.launch("init_check", 1, 4, /*phases=*/1, [=](ThreadCtx& ctx) {
    const std::uint32_t* zeros = ctx.shared<std::uint32_t>(8);
    const std::uint64_t* filled = ctx.shared<std::uint64_t>(4, ~0ull);
    bool good = true;
    for (int i = 0; i < 8; ++i) good = good && zeros[i] == 0;
    for (int i = 0; i < 4; ++i) good = good && filled[i] == ~0ull;
    if (good && ctx.thread_idx() == 0) {
      std::atomic_ref<std::uint32_t>(ok[0]).fetch_add(
          1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(d_ok.data()[0], 1u);
}

TEST(SharedMemoryTest, ChargesFlowIntoCountersAndRoofline) {
  Device device;
  const auto stats =
      device.launch("smem_traffic", 4, 64, /*phases=*/1, [](ThreadCtx& ctx) {
        (void)ctx.shared<std::uint32_t>(16);
        ctx.count_smem_write(64);
        ctx.count_smem_read(128);
        ctx.count_smem_atomic(3);
      });
  const std::uint64_t threads = 4ull * 64;
  EXPECT_EQ(stats.counters.smem_write_bytes, threads * 64);
  EXPECT_EQ(stats.counters.smem_read_bytes, threads * 128);
  EXPECT_EQ(stats.counters.smem_atomics, threads * 3);

  // The launch does nothing else, so the smem-atomic roofline term must be
  // the binding one: atomics / smem_atomic_throughput (plus launch
  // overhead).
  const double expected =
      device.props().launch_overhead +
      static_cast<double>(threads * 3) / device.props().smem_atomic_throughput;
  EXPECT_NEAR(stats.modeled_seconds, expected, expected * 1e-9);
}

TEST(SharedMemoryTest, ExhaustingBlockBudgetThrows) {
  Device device;
  const std::size_t over =
      device.props().smem_bytes_per_block / sizeof(std::uint64_t) + 1;
  EXPECT_THROW(
      device.launch("smem_overflow", 1, 1, /*phases=*/1,
                    [=](ThreadCtx& ctx) {
                      (void)ctx.shared<std::uint64_t>(over);
                    }),
      SimulationError);
}

TEST(SharedMemoryTest, MismatchedAllocationSequenceIsRejected) {
  Device device;
  EXPECT_THROW(device.launch("smem_mismatch", 1, 2, /*phases=*/1,
                             [](ThreadCtx& ctx) {
                               // Thread 0 asks for 8 elements, thread 1 for
                               // 16: not a static __shared__ declaration.
                               (void)ctx.shared<std::uint32_t>(
                                   ctx.thread_idx() == 0 ? 8 : 16);
                             }),
               PreconditionError);
}

TEST(SharedMemoryTest, PlainLaunchHasNoArenaOutsidePhasedOverload) {
  Device device;
  LaunchCounters counters;
  ThreadCtx bare(0, 0, 1, 1, counters);
  EXPECT_THROW((void)bare.shared<std::uint32_t>(1), PreconditionError);
}

TEST(SharedMemoryTest, PhasedChargesIdenticalAcrossPoolSizes) {
  // A block-heavy phased kernel whose charges depend on shared-memory
  // contents must report identical counters for every pool size: blocks
  // are smem-private and merge deterministically.
  auto run = [](unsigned pool_threads) {
    util::ThreadPool::set_global_threads(pool_threads);
    Device device;
    auto d_in = device.alloc<std::uint32_t>(4096);
    for (std::size_t i = 0; i < 4096; ++i) {
      d_in.data()[i] = static_cast<std::uint32_t>((i * 2654435761u) >> 20);
    }
    const std::uint32_t* in = d_in.data();
    const auto stats = device.launch(
        "histogram", 16, 256, /*phases=*/2, [=](ThreadCtx& ctx) {
          std::uint32_t* bins = ctx.shared<std::uint32_t>(64);
          if (ctx.phase() == 0) {
            const std::uint64_t i = ctx.global_id();
            const std::uint32_t v = in[i];
            ctx.count_gmem_read(4);
            bins[v % 64] += 1;
            ctx.count_smem_atomic(1);
          } else if (ctx.thread_idx() == 0) {
            std::uint64_t nonzero = 0;
            for (int b = 0; b < 64; ++b) nonzero += bins[b] != 0 ? 1 : 0;
            ctx.count_smem_read(64 * 4);
            ctx.count_ops(nonzero);  // content-dependent charge
          }
        });
    return stats;
  };

  const auto base = run(1);
  for (unsigned threads : {2u, 4u}) {
    const auto stats = run(threads);
    EXPECT_EQ(stats.counters.smem_atomics, base.counters.smem_atomics);
    EXPECT_EQ(stats.counters.smem_read_bytes, base.counters.smem_read_bytes);
    EXPECT_EQ(stats.counters.ops, base.counters.ops);
    EXPECT_EQ(stats.modeled_seconds, base.modeled_seconds);
  }
  util::ThreadPool::set_global_threads(0);  // restore configured default
}

}  // namespace
}  // namespace dedukt::gpusim
