#include "dedukt/gpusim/device.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "dedukt/util/error.hpp"

namespace dedukt::gpusim {
namespace {

TEST(DeviceTest, AllocTracksBytes) {
  Device device;
  auto buf = device.alloc<std::uint64_t>(1000);
  EXPECT_EQ(device.allocated_bytes(), 8000u);
  device.free(buf);
  EXPECT_EQ(device.allocated_bytes(), 0u);
}

TEST(DeviceTest, AllocWithFillInitializes) {
  Device device;
  auto buf = device.alloc<std::uint32_t>(16, 0xAAAAAAAAu);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(buf[i], 0xAAAAAAAAu);
}

TEST(DeviceTest, OutOfMemoryThrows) {
  DeviceProps props;
  props.memory_bytes = 1024;
  Device device(props);
  EXPECT_THROW((void)device.alloc<std::uint64_t>(1000), SimulationError);
}

TEST(DeviceTest, TransfersMoveDataAndAreTimed) {
  Device device;
  std::vector<int> host(256);
  std::iota(host.begin(), host.end(), 0);

  auto buf = device.alloc<int>(256);
  device.copy_to_device<int>(host, buf);
  EXPECT_GT(device.timeline().h2d_seconds, 0.0);
  EXPECT_EQ(device.timeline().h2d_bytes, 256u * sizeof(int));

  std::vector<int> back(256, -1);
  device.copy_to_host(buf, std::span<int>(back));
  EXPECT_EQ(back, host);
  EXPECT_GT(device.timeline().d2h_seconds, 0.0);
}

TEST(DeviceTest, OversizedCopyThrows) {
  Device device;
  auto buf = device.alloc<int>(4);
  std::vector<int> host(8, 0);
  EXPECT_THROW(device.copy_to_device<int>(host, buf), PreconditionError);
  EXPECT_THROW(device.copy_to_host(buf, std::span<int>(host)),
               PreconditionError);
}

TEST(DeviceTest, BufferAtChecksBounds) {
  Device device;
  auto buf = device.alloc<int>(4);
  EXPECT_NO_THROW(buf.at(3));
  EXPECT_THROW(buf.at(4), Error);
}

TEST(DeviceTest, ResetTimelineClears) {
  Device device;
  auto buf = device.alloc<int>(64);
  std::vector<int> host(64, 1);
  device.copy_to_device<int>(host, buf);
  device.reset_timeline();
  EXPECT_DOUBLE_EQ(device.timeline().total_seconds(), 0.0);
  EXPECT_EQ(device.timeline().h2d_bytes, 0u);
}

TEST(DeviceTest, ShapeForCoversAllItems) {
  Device device;
  for (std::uint64_t items : {0ull, 1ull, 255ull, 256ull, 257ull, 100'000ull}) {
    const auto shape = device.shape_for(items);
    EXPECT_GE(static_cast<std::uint64_t>(shape.grid_dim) * shape.block_dim,
              items);
    EXPECT_GE(shape.grid_dim, 1u);
  }
}

TEST(DeviceTest, V100PropsMatchSummitSheet) {
  const DeviceProps props = DeviceProps::v100();
  EXPECT_EQ(props.sms, 80);
  EXPECT_EQ(props.warp_size, 32);
  EXPECT_EQ(props.memory_bytes, 16ull << 30);  // 16 GB HBM2 (§V-A)
}

TEST(DeviceTimelineTest, VolumeExcludesFixedOverheads) {
  Device device;
  // An empty kernel has only launch overhead: zero volume time.
  device.launch(1, 1, [](ThreadCtx&) {});
  EXPECT_DOUBLE_EQ(device.timeline().volume_seconds, 0.0);
  EXPECT_GT(device.timeline().kernel_seconds, 0.0);

  // A traffic-heavy kernel accrues volume time below its total time.
  device.launch(1, 1, [](ThreadCtx& ctx) {
    ctx.count_gmem_read(1'000'000'000);
  });
  EXPECT_GT(device.timeline().volume_seconds, 0.0);
  EXPECT_LT(device.timeline().volume_seconds,
            device.timeline().total_seconds());
}

TEST(DeviceTimelineTest, TransfersContributeVolume) {
  Device device;
  auto buf = device.alloc<std::uint8_t>(1 << 20);
  std::vector<std::uint8_t> host(1 << 20, 1);
  device.copy_to_device<std::uint8_t>(host, buf);
  const double after_h2d = device.timeline().volume_seconds;
  EXPECT_GT(after_h2d, 0.0);
  device.copy_to_host(buf, std::span<std::uint8_t>(host));
  EXPECT_GT(device.timeline().volume_seconds, after_h2d);
}

TEST(DeviceTimelineTest, MergeSums) {
  DeviceTimeline a, b;
  a.kernel_seconds = 1;
  a.h2d_seconds = 2;
  b.kernel_seconds = 3;
  b.d2h_seconds = 4;
  b.launches = 5;
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.kernel_seconds, 4.0);
  EXPECT_DOUBLE_EQ(a.transfer_seconds(), 6.0);
  EXPECT_DOUBLE_EQ(a.total_seconds(), 10.0);
  EXPECT_EQ(a.launches, 5u);
}

}  // namespace
}  // namespace dedukt::gpusim
