#include "dedukt/gpusim/cost_model.hpp"

#include <gtest/gtest.h>

namespace dedukt::gpusim {
namespace {

DeviceProps test_props() {
  DeviceProps props;
  props.hbm_bandwidth = 100e9;
  props.int_throughput = 1e12;
  props.atomic_throughput = 1e9;
  props.launch_overhead = 1e-6;
  props.host_link_bandwidth = 10e9;
  props.transfer_overhead = 2e-6;
  return props;
}

TEST(GpuCostModelTest, MemoryBoundKernel) {
  GpuCostModel model(test_props());
  LaunchCounters c;
  c.gmem_read_bytes = 100'000'000'000ull;  // 1 s at 100 GB/s
  EXPECT_NEAR(model.kernel_seconds(c), 1.0 + 1e-6, 1e-9);
}

TEST(GpuCostModelTest, ComputeBoundKernel) {
  GpuCostModel model(test_props());
  LaunchCounters c;
  c.ops = 2'000'000'000'000ull;  // 2 s at 1 Tops
  c.gmem_read_bytes = 1000;     // negligible
  EXPECT_NEAR(model.kernel_seconds(c), 2.0 + 1e-6, 1e-9);
}

TEST(GpuCostModelTest, AtomicBoundKernel) {
  GpuCostModel model(test_props());
  LaunchCounters c;
  c.atomics = 3'000'000'000ull;  // 3 s at 1 G atomics/s
  EXPECT_NEAR(model.kernel_seconds(c), 3.0 + 1e-6, 1e-9);
}

TEST(GpuCostModelTest, RooflineTakesTheMax) {
  GpuCostModel model(test_props());
  LaunchCounters c;
  c.gmem_read_bytes = 50'000'000'000ull;  // 0.5 s
  c.ops = 700'000'000'000ull;             // 0.7 s  <- dominates
  c.atomics = 100'000'000ull;             // 0.1 s
  EXPECT_NEAR(model.kernel_seconds(c), 0.7 + 1e-6, 1e-9);
}

TEST(GpuCostModelTest, EmptyKernelCostsLaunchOverhead) {
  GpuCostModel model(test_props());
  EXPECT_DOUBLE_EQ(model.kernel_seconds(LaunchCounters{}), 1e-6);
}

TEST(GpuCostModelTest, TransferPricedAtHostLink) {
  GpuCostModel model(test_props());
  EXPECT_NEAR(model.transfer_seconds(10'000'000'000ull), 1.0 + 2e-6, 1e-9);
}

TEST(GpuCostModelTest, ZeroByteTransferIsFree) {
  GpuCostModel model(test_props());
  EXPECT_DOUBLE_EQ(model.transfer_seconds(0), 0.0);
}

TEST(GpuCostModelTest, ReadsAndWritesBothCount) {
  GpuCostModel model(test_props());
  LaunchCounters reads, writes;
  reads.gmem_read_bytes = 1'000'000;
  writes.gmem_write_bytes = 1'000'000;
  EXPECT_DOUBLE_EQ(model.kernel_seconds(reads),
                   model.kernel_seconds(writes));
}

}  // namespace
}  // namespace dedukt::gpusim
