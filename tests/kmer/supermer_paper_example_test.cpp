// §IV-A worked example: "The read is of length 19 bases, k-mer length 8,
// and minimizer length 4. We use lexicographical ordering... In the
// traditional setting, parsing k-mers from the read and sending k-mers to
// the respective GPU nodes for counting would require (19-8+1)*8 = 96 bases
// to be communicated. However, our approach only requires three supermers
// of total length 33 (average length 11 per supermer) bases, which results
// in a total communication reduction of 2.9x."
//
// The figure's exact read is not printed in the text, but the arithmetic is
// fully determined by "19 bases, k=8, m=4, 3 supermers": the supermer total
// is nkmers + (k-1)*nsupermers = 12 + 7*3 = 33 for ANY such read. We verify
// that identity on a searched example and check the paper's reduction
// number.
#include <gtest/gtest.h>

#include <string>

#include "dedukt/kmer/supermer.hpp"
#include "dedukt/kmer/theory.hpp"
#include "dedukt/util/rng.hpp"

namespace dedukt::kmer {
namespace {

constexpr int kK = 8;
constexpr int kM = 4;
constexpr int kReadLen = 19;

std::string find_read_with_three_supermers() {
  MinimizerPolicy policy(MinimizerOrder::kLexicographic, kM);
  Xoshiro256 rng(4242);
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  for (int attempt = 0; attempt < 10'000; ++attempt) {
    std::string read;
    for (int i = 0; i < kReadLen; ++i) read.push_back(kBases[rng.below(4)]);
    if (build_supermers_maximal(read, kK, policy, 4).size() == 3) {
      return read;
    }
  }
  ADD_FAILURE() << "no 19-base read with exactly 3 supermers found";
  return {};
}

TEST(PaperExampleTest, NineteenBaseReadYieldsTwelveKmers) {
  EXPECT_EQ((kReadLen - kK + 1) * kK, 96);  // the paper's 96 bases
}

TEST(PaperExampleTest, ThreeSupermersTotalThirtyThreeBases) {
  const std::string read = find_read_with_three_supermers();
  ASSERT_EQ(read.size(), static_cast<std::size_t>(kReadLen));

  MinimizerPolicy policy(MinimizerOrder::kLexicographic, kM);
  const auto supermers = build_supermers_maximal(read, kK, policy, 4);
  ASSERT_EQ(supermers.size(), 3u);

  std::size_t total_bases = 0;
  for (const auto& s : supermers) total_bases += s.bases.size();
  EXPECT_EQ(total_bases, 33u);  // average length 11, as the paper states

  const double reduction = 96.0 / static_cast<double>(total_bases);
  EXPECT_NEAR(reduction, 2.909, 0.01);  // "2.9x"
}

TEST(PaperExampleTest, TheoryModuleReproducesTheExample) {
  // Exact supermer count: S = K / (s - k + 1) with K=12, s=11, k=8 -> 3.
  theory::Params p;
  p.total_bases = 19;
  p.avg_read_length = 19;
  p.k = kK;
  p.nprocs = 4;
  EXPECT_DOUBLE_EQ(theory::total_kmers(p), 12.0);
  EXPECT_DOUBLE_EQ(theory::total_supermers_exact(p, 11.0), 3.0);
  EXPECT_NEAR(theory::reduction_exact(p, 11.0), 96.0 / 33.0, 1e-9);
  // The paper's coarse "(s-k)x" estimate says ~3x for the same example.
  EXPECT_DOUBLE_EQ(theory::reduction_paper_estimate(kK, 11.0), 3.0);
}

TEST(PaperExampleTest, WindowedBuilderMatchesWhenWindowCoversTheRead) {
  // With window >= nkmers the windowed GPU builder degenerates to the
  // maximal builder on a 19-base read.
  const std::string read = find_read_with_three_supermers();
  SupermerConfig cfg;
  cfg.k = kK;
  cfg.m = kM;
  cfg.window = kReadLen - kK + 1;  // 12 k-mer starts, one window
  cfg.order = MinimizerOrder::kLexicographic;
  const auto windowed = build_supermers_read(read, cfg, 4);
  ASSERT_EQ(windowed.size(), 3u);
  std::size_t total = 0;
  for (const auto& d : windowed) total += d.smer.len;
  EXPECT_EQ(total, 33u);
}

}  // namespace
}  // namespace dedukt::kmer
