#include "dedukt/kmer/extract.hpp"

#include <gtest/gtest.h>

#include "dedukt/util/rng.hpp"

namespace dedukt::kmer {
namespace {

using io::BaseEncoding;

TEST(FragmentsTest, PureAcgtIsOneFragment) {
  const auto frags = acgt_fragments("ACGTACGT");
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0], "ACGTACGT");
}

TEST(FragmentsTest, SplitsOnN) {
  const auto frags = acgt_fragments("ACGTNNGGTTNA");
  ASSERT_EQ(frags.size(), 3u);
  EXPECT_EQ(frags[0], "ACGT");
  EXPECT_EQ(frags[1], "GGTT");
  EXPECT_EQ(frags[2], "A");
}

TEST(FragmentsTest, LeadingTrailingJunk) {
  const auto frags = acgt_fragments("NNACGTNN");
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0], "ACGT");
}

TEST(FragmentsTest, EmptyAndAllJunk) {
  EXPECT_TRUE(acgt_fragments("").empty());
  EXPECT_TRUE(acgt_fragments("NNNXX").empty());
}

TEST(ExtractTest, AllKmersInOrder) {
  const auto kmers = extract_kmers("ACGTA", 3, BaseEncoding::kStandard);
  ASSERT_EQ(kmers.size(), 3u);
  EXPECT_EQ(kmers[0], pack("ACG", BaseEncoding::kStandard));
  EXPECT_EQ(kmers[1], pack("CGT", BaseEncoding::kStandard));
  EXPECT_EQ(kmers[2], pack("GTA", BaseEncoding::kStandard));
}

TEST(ExtractTest, RollingMatchesNaivePacking) {
  Xoshiro256 rng(11);
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string read;
  for (int i = 0; i < 500; ++i) read.push_back(kBases[rng.below(4)]);

  for (int k : {2, 5, 17, 31}) {
    const auto rolled = extract_kmers(read, k, BaseEncoding::kRandomized);
    ASSERT_EQ(rolled.size(), read.size() - static_cast<std::size_t>(k) + 1);
    for (std::size_t i = 0; i < rolled.size(); ++i) {
      EXPECT_EQ(rolled[i],
                pack(std::string_view(read).substr(i,
                                                   static_cast<std::size_t>(k)),
                     BaseEncoding::kRandomized));
    }
  }
}

TEST(ExtractTest, NoKmersSpanN) {
  const auto kmers = extract_kmers("ACGNACG", 3, BaseEncoding::kStandard);
  // Two fragments of 3 bases each -> one 3-mer from each.
  ASSERT_EQ(kmers.size(), 2u);
  EXPECT_EQ(kmers[0], pack("ACG", BaseEncoding::kStandard));
  EXPECT_EQ(kmers[1], pack("ACG", BaseEncoding::kStandard));
}

TEST(ExtractTest, ShortReadYieldsNothing) {
  EXPECT_TRUE(extract_kmers("ACG", 4, BaseEncoding::kStandard).empty());
  EXPECT_TRUE(extract_kmers("", 4, BaseEncoding::kStandard).empty());
}

TEST(ExtractTest, RejectsBadK) {
  std::vector<KmerCode> out;
  EXPECT_THROW(extract_kmers("ACGT", 0, BaseEncoding::kStandard, out),
               PreconditionError);
  EXPECT_THROW(extract_kmers("ACGT", 32, BaseEncoding::kStandard, out),
               PreconditionError);
}

TEST(CountKmersTest, MatchesExtraction) {
  const std::string read = "ACGTNACGTACGTNNAC";
  for (int k : {2, 3, 4, 5}) {
    EXPECT_EQ(count_kmers(read, k),
              extract_kmers(read, k, BaseEncoding::kStandard).size());
  }
}

TEST(ForEachKmerTest, StopsBeforeKOnShortFragment) {
  int calls = 0;
  for_each_kmer("ACG", 5, BaseEncoding::kStandard,
                [&](KmerCode) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace dedukt::kmer
