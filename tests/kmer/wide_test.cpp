#include "dedukt/kmer/wide.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "dedukt/util/rng.hpp"

namespace dedukt::kmer {
namespace {

using io::BaseEncoding;

std::string random_seq(Xoshiro256& rng, int len) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string s;
  for (int i = 0; i < len; ++i) s.push_back(kBases[rng.below(4)]);
  return s;
}

TEST(WidePackTest, RoundTripsAcrossLengths) {
  Xoshiro256 rng(81);
  for (int len : {1, 17, 31, 32, 33, 47, 63}) {
    const std::string s = random_seq(rng, len);
    for (const auto enc :
         {BaseEncoding::kStandard, BaseEncoding::kRandomized}) {
      EXPECT_EQ(wide_unpack(wide_pack(s, enc), len, enc), s) << len;
    }
  }
}

TEST(WidePackTest, AgreesWithNarrowPackForSmallK) {
  Xoshiro256 rng(82);
  const std::string s = random_seq(rng, 21);
  EXPECT_EQ(static_cast<std::uint64_t>(
                wide_pack(s, BaseEncoding::kStandard)),
            pack(s, BaseEncoding::kStandard));
}

TEST(WidePackTest, RejectsBadLengths) {
  EXPECT_THROW(wide_pack("", BaseEncoding::kStandard), PreconditionError);
  EXPECT_THROW(wide_pack(std::string(64, 'A'), BaseEncoding::kStandard),
               PreconditionError);
}

TEST(WidePackTest, IntegerOrderIsLexicographicOrder) {
  Xoshiro256 rng(83);
  for (int trial = 0; trial < 100; ++trial) {
    const std::string a = random_seq(rng, 45);
    const std::string b = random_seq(rng, 45);
    if (a == b) continue;
    EXPECT_EQ(wide_pack(a, BaseEncoding::kStandard) <
                  wide_pack(b, BaseEncoding::kStandard),
              a < b);
  }
}

TEST(WideKeyTest, RoundTripsThroughKey) {
  Xoshiro256 rng(84);
  const std::string s = random_seq(rng, 55);
  const WideCode code = wide_pack(s, BaseEncoding::kStandard);
  EXPECT_EQ(from_key(to_key(code)), code);
}

TEST(WideKeyTest, SentinelUnreachable) {
  const std::string all_t(63, 'T');
  const WideKey max_key =
      to_key(wide_pack(all_t, BaseEncoding::kStandard));
  EXPECT_LT(max_key, kInvalidWideKey);
}

TEST(WideKeyTest, HashSeparatesSeeds) {
  const WideKey key{0x1234, 0x5678};
  EXPECT_NE(hash_wide(key, 1), hash_wide(key, 2));
}

TEST(WideSubTest, ExtractsNarrowSubcodes) {
  const std::string s =
      "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT";  // 40 bases
  const WideCode code = wide_pack(s, BaseEncoding::kStandard);
  for (int pos : {0, 7, 33}) {
    EXPECT_EQ(wide_sub(code, 40, pos, 7),
              pack(s.substr(static_cast<std::size_t>(pos), 7),
                   BaseEncoding::kStandard))
        << pos;
  }
}

TEST(WideRevCompTest, MatchesStringReverseComplement) {
  Xoshiro256 rng(85);
  for (int len : {33, 48, 63}) {
    const std::string s = random_seq(rng, len);
    const WideCode code = wide_pack(s, BaseEncoding::kStandard);
    EXPECT_EQ(wide_unpack(
                  wide_reverse_complement(code, len, BaseEncoding::kStandard),
                  len, BaseEncoding::kStandard),
              io::reverse_complement(s));
  }
}

TEST(WideCanonicalTest, StrandInvariant) {
  Xoshiro256 rng(86);
  const std::string s = random_seq(rng, 41);
  const WideCode fwd = wide_pack(s, BaseEncoding::kStandard);
  const WideCode rev =
      wide_pack(io::reverse_complement(s), BaseEncoding::kStandard);
  EXPECT_EQ(wide_canonical(fwd, 41, BaseEncoding::kStandard),
            wide_canonical(rev, 41, BaseEncoding::kStandard));
}

TEST(WideExtractTest, RollingMatchesNaive) {
  Xoshiro256 rng(87);
  const std::string read = random_seq(rng, 300);
  const int k = 41;
  std::vector<WideCode> rolled;
  for_each_wide_kmer(read, k, BaseEncoding::kRandomized,
                     [&](WideCode code) { rolled.push_back(code); });
  ASSERT_EQ(rolled.size(), read.size() - static_cast<std::size_t>(k) + 1);
  for (std::size_t i = 0; i < rolled.size(); ++i) {
    EXPECT_EQ(rolled[i],
              wide_pack(std::string_view(read).substr(
                            i, static_cast<std::size_t>(k)),
                        BaseEncoding::kRandomized));
  }
}

TEST(WideMinimizerTest, MatchesNarrowDefinitionOnSubstrings) {
  // The wide minimizer must equal the smallest m-mer by policy score,
  // computed from the ASCII reference.
  Xoshiro256 rng(88);
  const MinimizerPolicy policy(MinimizerOrder::kRandomized, 9);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string kmer_str = random_seq(rng, 51);
    const WideCode code = wide_pack(kmer_str, policy.encoding());
    KmerCode best = pack(kmer_str.substr(0, 9), policy.encoding());
    for (std::size_t pos = 1; pos + 9 <= kmer_str.size(); ++pos) {
      const KmerCode mmer =
          pack(kmer_str.substr(pos, 9), policy.encoding());
      if (policy.score(mmer) < policy.score(best)) best = mmer;
    }
    EXPECT_EQ(wide_minimizer_of(code, 51, policy), best);
  }
}

TEST(WidePartitionTest, StableAndInRange) {
  Xoshiro256 rng(89);
  for (int trial = 0; trial < 100; ++trial) {
    const WideCode code =
        wide_pack(random_seq(rng, 45), BaseEncoding::kStandard);
    const auto p = wide_kmer_partition(code, 384);
    EXPECT_LT(p, 384u);
    EXPECT_EQ(p, wide_kmer_partition(code, 384));
  }
}

TEST(WidePartitionTest, RoughlyUniform) {
  Xoshiro256 rng(90);
  constexpr std::uint32_t kParts = 8;
  std::vector<int> buckets(kParts, 0);
  for (int i = 0; i < 16000; ++i) {
    ++buckets[wide_kmer_partition(
        wide_pack(random_seq(rng, 40), BaseEncoding::kStandard), kParts)];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, 2000, 400);
  }
}

}  // namespace
}  // namespace dedukt::kmer
