#include "dedukt/kmer/minimizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "dedukt/util/rng.hpp"

namespace dedukt::kmer {
namespace {

using io::BaseEncoding;

std::string random_seq(Xoshiro256& rng, int len) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string s;
  for (int i = 0; i < len; ++i) s.push_back(kBases[rng.below(4)]);
  return s;
}

/// Reference minimizer: enumerate all m-mers as strings and pick the best
/// by the policy's score. Ties break leftmost.
KmerCode reference_minimizer(const std::string& kmer,
                             const MinimizerPolicy& policy) {
  const int m = policy.m();
  KmerCode best = 0;
  std::uint64_t best_score = ~std::uint64_t{0};
  for (std::size_t pos = 0; pos + static_cast<std::size_t>(m) <= kmer.size();
       ++pos) {
    const KmerCode mmer =
        pack(kmer.substr(pos, static_cast<std::size_t>(m)),
             policy.encoding());
    const std::uint64_t score = policy.score(mmer);
    if (score < best_score) {
      best_score = score;
      best = mmer;
    }
  }
  return best;
}

TEST(MinimizerTest, LexicographicPicksSmallestSubstring) {
  // For lexicographic ordering the minimizer is the smallest m-length
  // substring in plain string order.
  MinimizerPolicy policy(MinimizerOrder::kLexicographic, 3);
  const std::string kmer = "GTCAAGTC";
  std::vector<std::string> mmers;
  for (std::size_t i = 0; i + 3 <= kmer.size(); ++i) {
    mmers.push_back(kmer.substr(i, 3));
  }
  const std::string smallest = *std::min_element(mmers.begin(), mmers.end());
  const KmerCode code = pack(kmer, policy.encoding());
  EXPECT_EQ(unpack(minimizer_of(code, 8, policy), 3, policy.encoding()),
            smallest);
}

class OrderSweep : public ::testing::TestWithParam<MinimizerOrder> {};

TEST_P(OrderSweep, MatchesReferenceOnRandomKmers) {
  Xoshiro256 rng(21);
  for (int m : {3, 4, 7, 9}) {
    MinimizerPolicy policy(GetParam(), m);
    for (int trial = 0; trial < 100; ++trial) {
      const std::string kmer = random_seq(rng, 17);
      const KmerCode code = pack(kmer, policy.encoding());
      EXPECT_EQ(minimizer_of(code, 17, policy),
                reference_minimizer(kmer, policy))
          << "kmer=" << kmer << " m=" << m;
    }
  }
}

TEST_P(OrderSweep, MinimizerIsASubstringOfTheKmer) {
  Xoshiro256 rng(22);
  MinimizerPolicy policy(GetParam(), 5);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string kmer = random_seq(rng, 17);
    const KmerCode code = pack(kmer, policy.encoding());
    const std::string minimizer =
        unpack(minimizer_of(code, 17, policy), 5, policy.encoding());
    EXPECT_NE(kmer.find(minimizer), std::string::npos);
  }
}

TEST_P(OrderSweep, DeterministicAcrossCalls) {
  MinimizerPolicy policy(GetParam(), 7);
  const KmerCode code =
      pack("ACGTACGTACGTACGTA", policy.encoding());
  EXPECT_EQ(minimizer_of(code, 17, policy), minimizer_of(code, 17, policy));
}

INSTANTIATE_TEST_SUITE_P(AllOrders, OrderSweep,
                         ::testing::Values(MinimizerOrder::kLexicographic,
                                           MinimizerOrder::kKmc2,
                                           MinimizerOrder::kRandomized));

TEST(Kmc2Test, PenalizesAaaPrefix) {
  // KMC2: m-mers starting with AAA get lower priority (§II-B). For a k-mer
  // offering both AAAT and CCCT, plain lex picks AAAT but KMC2 picks the
  // other.
  MinimizerPolicy lex(MinimizerOrder::kLexicographic, 4);
  MinimizerPolicy kmc2(MinimizerOrder::kKmc2, 4);
  const std::string kmer = "AAATCCCT";
  const KmerCode code = pack(kmer, BaseEncoding::kStandard);
  EXPECT_EQ(unpack(minimizer_of(code, 8, lex), 4, BaseEncoding::kStandard),
            "AAAT");
  const std::string kmc2_min =
      unpack(minimizer_of(code, 8, kmc2), 4, BaseEncoding::kStandard);
  EXPECT_NE(kmc2_min.substr(0, 3), "AAA");
}

TEST(Kmc2Test, PenalizesAcaPrefix) {
  MinimizerPolicy kmc2(MinimizerOrder::kKmc2, 4);
  const std::string kmer = "ACATCGGT";
  const KmerCode code = pack(kmer, BaseEncoding::kStandard);
  const std::string minimizer =
      unpack(minimizer_of(code, 8, kmc2), 4, BaseEncoding::kStandard);
  EXPECT_NE(minimizer.substr(0, 3), "ACA");
}

TEST(Kmc2Test, FallsBackWhenOnlyPenalizedAvailable) {
  // All m-mers start with AAA; the penalty is uniform, so the smallest
  // penalized m-mer still wins.
  MinimizerPolicy kmc2(MinimizerOrder::kKmc2, 4);
  const KmerCode code = pack("AAAAAAA", BaseEncoding::kStandard);
  EXPECT_EQ(unpack(minimizer_of(code, 7, kmc2), 4, BaseEncoding::kStandard),
            "AAAA");
}

TEST(RandomizedTest, SingleBaseOrderIsCATG) {
  // With A=1,C=0,T=2,G=3 the randomized order of 1-mers is C < A < T < G.
  MinimizerPolicy policy(MinimizerOrder::kRandomized, 1);
  auto min1 = [&](const std::string& kmer) {
    return unpack(minimizer_of(pack(kmer, policy.encoding()),
                               static_cast<int>(kmer.size()), policy),
                  1, policy.encoding());
  };
  EXPECT_EQ(min1("AC"), "C");
  EXPECT_EQ(min1("AT"), "A");
  EXPECT_EQ(min1("TG"), "T");
  EXPECT_EQ(min1("GA"), "A");
}

TEST(RandomizedTest, SpreadsPartitionsBetterThanLexOnSkewedData) {
  // Lexicographic minimizers concentrate AAAA... minimizers; the paper's
  // randomized encoding breaks that up (§IV-A). Compare partition skew on
  // A-rich sequences.
  Xoshiro256 rng(23);
  constexpr std::uint32_t kParts = 8;
  std::vector<std::uint64_t> lex_loads(kParts, 0), rnd_loads(kParts, 0);
  MinimizerPolicy lex(MinimizerOrder::kLexicographic, 5);
  MinimizerPolicy rnd(MinimizerOrder::kRandomized, 5);
  for (int trial = 0; trial < 3000; ++trial) {
    // A-rich 17-mers: 60% A.
    std::string kmer;
    for (int i = 0; i < 17; ++i) {
      const auto u = rng.uniform();
      kmer.push_back(u < 0.6 ? 'A' : (u < 0.74 ? 'C' : (u < 0.87 ? 'G' : 'T')));
    }
    const KmerCode lex_min =
        minimizer_of(pack(kmer, lex.encoding()), 17, lex);
    const KmerCode rnd_min =
        minimizer_of(pack(kmer, rnd.encoding()), 17, rnd);
    ++lex_loads[minimizer_partition(lex_min, kParts)];
    ++rnd_loads[minimizer_partition(rnd_min, kParts)];
  }
  auto imbalance = [](const std::vector<std::uint64_t>& loads) {
    std::uint64_t maxv = 0, sum = 0;
    for (auto v : loads) {
      maxv = std::max(maxv, v);
      sum += v;
    }
    return static_cast<double>(maxv) * loads.size() /
           static_cast<double>(sum);
  };
  // Minimizer-hash partitioning hides some skew, but fewer distinct lex
  // minimizers means lumpier buckets.
  EXPECT_LE(imbalance(rnd_loads), imbalance(lex_loads) * 1.10);
}

TEST(PartitionTest, StableAndInRange) {
  Xoshiro256 rng(24);
  for (int trial = 0; trial < 200; ++trial) {
    const KmerCode minimizer = rng.below(1u << 18);
    for (std::uint32_t parts : {1u, 2u, 384u}) {
      const auto p = minimizer_partition(minimizer, parts);
      EXPECT_LT(p, parts);
      EXPECT_EQ(p, minimizer_partition(minimizer, parts));
    }
  }
}

TEST(PolicyTest, EncodingFollowsOrder) {
  EXPECT_EQ(MinimizerPolicy(MinimizerOrder::kLexicographic, 5).encoding(),
            BaseEncoding::kStandard);
  EXPECT_EQ(MinimizerPolicy(MinimizerOrder::kKmc2, 5).encoding(),
            BaseEncoding::kStandard);
  EXPECT_EQ(MinimizerPolicy(MinimizerOrder::kRandomized, 5).encoding(),
            BaseEncoding::kRandomized);
}

TEST(PolicyTest, RejectsBadParameters) {
  EXPECT_THROW(MinimizerPolicy(MinimizerOrder::kLexicographic, 0),
               PreconditionError);
  EXPECT_THROW(MinimizerPolicy(MinimizerOrder::kKmc2, 2), PreconditionError);
  MinimizerPolicy ok(MinimizerOrder::kRandomized, 7);
  EXPECT_THROW(minimizer_of(0, 7, ok), PreconditionError);  // m must be < k
}

TEST(ToStringTest, Names) {
  EXPECT_EQ(to_string(MinimizerOrder::kLexicographic), "lexicographic");
  EXPECT_EQ(to_string(MinimizerOrder::kKmc2), "kmc2");
  EXPECT_EQ(to_string(MinimizerOrder::kRandomized), "randomized");
}

}  // namespace
}  // namespace dedukt::kmer
