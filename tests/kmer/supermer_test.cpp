#include "dedukt/kmer/supermer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "dedukt/util/rng.hpp"

namespace dedukt::kmer {
namespace {

std::string random_seq(Xoshiro256& rng, int len) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string s;
  for (int i = 0; i < len; ++i) s.push_back(kBases[rng.below(4)]);
  return s;
}

std::map<KmerCode, int> kmer_multiset(const std::string& read, int k,
                                      io::BaseEncoding enc) {
  std::map<KmerCode, int> counts;
  for (const KmerCode code : extract_kmers(read, k, enc)) ++counts[code];
  return counts;
}

TEST(SupermerConfigTest, DefaultsAreThePaperOperatingPoint) {
  SupermerConfig config;
  EXPECT_EQ(config.k, 17);
  EXPECT_EQ(config.m, 7);
  EXPECT_EQ(config.window, 15);
  EXPECT_EQ(config.order, MinimizerOrder::kRandomized);
  EXPECT_EQ(config.max_supermer_bases(), 31);  // one 64-bit word (§IV-C)
  EXPECT_NO_THROW(config.validate());
}

TEST(SupermerConfigTest, RejectsUnpackableWindow) {
  SupermerConfig config;
  config.k = 17;
  config.window = 16;  // 17+16-1 = 32 bases > one word
  EXPECT_THROW(config.validate(), PreconditionError);
}

TEST(SupermerConfigTest, RejectsBadMAndK) {
  SupermerConfig config;
  config.m = 17;  // must be < k
  EXPECT_THROW(config.validate(), PreconditionError);
  config = SupermerConfig{};
  config.k = 1;
  EXPECT_THROW(config.validate(), PreconditionError);
  config = SupermerConfig{};
  config.window = 0;
  EXPECT_THROW(config.validate(), PreconditionError);
}

// --- the central invariants, swept over (k, m, window, order) ---

using SweepParam = std::tuple<int, int, int, MinimizerOrder>;

class SupermerSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  SupermerConfig config() const {
    SupermerConfig c;
    c.k = std::get<0>(GetParam());
    c.m = std::get<1>(GetParam());
    c.window = std::get<2>(GetParam());
    c.order = std::get<3>(GetParam());
    return c;
  }
};

TEST_P(SupermerSweep, DecompositionReconstructsKmerMultiset) {
  const SupermerConfig cfg = config();
  const io::BaseEncoding enc = cfg.policy().encoding();
  Xoshiro256 rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const std::string read =
        random_seq(rng, cfg.k + static_cast<int>(rng.below(120)));
    const auto supermers = build_supermers_read(read, cfg, /*parts=*/7);
    std::map<KmerCode, int> reconstructed;
    for (const auto& d : supermers) {
      for_each_kmer_in_supermer(d.smer, cfg.k,
                                [&](KmerCode code) { ++reconstructed[code]; });
    }
    EXPECT_EQ(reconstructed, kmer_multiset(read, cfg.k, enc))
        << "read=" << read;
  }
}

TEST_P(SupermerSweep, AllKmersInASupermerShareItsMinimizerAndDest) {
  const SupermerConfig cfg = config();
  const MinimizerPolicy policy = cfg.policy();
  Xoshiro256 rng(32);
  constexpr std::uint32_t kParts = 13;
  for (int trial = 0; trial < 10; ++trial) {
    const std::string read = random_seq(rng, 150);
    for (const auto& d : build_supermers_read(read, cfg, kParts)) {
      for_each_kmer_in_supermer(d.smer, cfg.k, [&](KmerCode code) {
        const KmerCode minimizer = minimizer_of(code, cfg.k, policy);
        EXPECT_EQ(minimizer_partition(minimizer, kParts), d.dest);
      });
    }
  }
}

TEST_P(SupermerSweep, WindowCapsLength) {
  const SupermerConfig cfg = config();
  Xoshiro256 rng(33);
  const std::string read = random_seq(rng, 400);
  for (const auto& d : build_supermers_read(read, cfg, 5)) {
    EXPECT_GE(static_cast<int>(d.smer.len), cfg.k);
    EXPECT_LE(static_cast<int>(d.smer.len), cfg.max_supermer_bases());
  }
}

TEST_P(SupermerSweep, StructuralLengthIdentity) {
  // sum(len) == nkmers + (k-1) * nsupermers: every supermer re-spends k-1
  // bases of overlap context.
  const SupermerConfig cfg = config();
  Xoshiro256 rng(34);
  const std::string read = random_seq(rng, 300);
  const auto supermers = build_supermers_read(read, cfg, 3);
  std::uint64_t total_len = 0, total_kmers = 0;
  for (const auto& d : supermers) {
    total_len += d.smer.len;
    total_kmers += static_cast<std::uint64_t>(kmers_in_supermer(d.smer, cfg.k));
  }
  EXPECT_EQ(total_kmers, count_kmers(read, cfg.k));
  EXPECT_EQ(total_len,
            total_kmers + static_cast<std::uint64_t>(cfg.k - 1) *
                              supermers.size());
}

TEST_P(SupermerSweep, SupermersAreSubstringsOfTheRead) {
  const SupermerConfig cfg = config();
  const io::BaseEncoding enc = cfg.policy().encoding();
  Xoshiro256 rng(35);
  const std::string read = random_seq(rng, 200);
  for (const auto& d : build_supermers_read(read, cfg, 4)) {
    EXPECT_NE(read.find(unpack_supermer(d.smer, enc)), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, SupermerSweep,
    ::testing::Values(
        SweepParam{17, 7, 15, MinimizerOrder::kRandomized},   // paper default
        SweepParam{17, 9, 15, MinimizerOrder::kRandomized},   // paper m=9
        SweepParam{17, 7, 15, MinimizerOrder::kLexicographic},
        SweepParam{17, 7, 15, MinimizerOrder::kKmc2},
        SweepParam{8, 4, 10, MinimizerOrder::kLexicographic}, // Fig. 4 shape
        SweepParam{5, 3, 4, MinimizerOrder::kRandomized},
        SweepParam{31, 9, 1, MinimizerOrder::kRandomized},    // window of 1
        SweepParam{11, 5, 21, MinimizerOrder::kKmc2}));

TEST(SupermerWindowingTest, WindowOfOneGivesOneSupermerPerKmer) {
  SupermerConfig cfg;
  cfg.k = 9;
  cfg.m = 4;
  cfg.window = 1;
  const std::string read = "ACGTACGTACGTACGTACGT";
  const auto supermers = build_supermers_read(read, cfg, 3);
  EXPECT_EQ(supermers.size(), count_kmers(read, cfg.k));
  for (const auto& d : supermers) {
    EXPECT_EQ(static_cast<int>(d.smer.len), cfg.k);
  }
}

TEST(SupermerWindowingTest, HomopolymerCompressesMaximally) {
  // In AAAA...A every k-mer shares the minimizer, so each window yields one
  // supermer of maximal length.
  SupermerConfig cfg;
  cfg.k = 17;
  cfg.m = 7;
  cfg.window = 15;
  const std::string read(100, 'A');
  const auto supermers = build_supermers_read(read, cfg, 5);
  const std::uint64_t nkmers = count_kmers(read, cfg.k);
  const std::uint64_t expected_supermers =
      (nkmers + static_cast<std::uint64_t>(cfg.window) - 1) /
      static_cast<std::uint64_t>(cfg.window);
  EXPECT_EQ(supermers.size(), expected_supermers);
  EXPECT_EQ(static_cast<int>(supermers[0].smer.len),
            cfg.max_supermer_bases());
}

TEST(SupermerWindowingTest, ReadShorterThanKYieldsNothing) {
  SupermerConfig cfg;
  EXPECT_TRUE(build_supermers_read("ACGT", cfg, 4).empty());
  EXPECT_TRUE(build_supermers_read("", cfg, 4).empty());
}

TEST(SupermerWindowingTest, NonAcgtBreaksSupermers) {
  SupermerConfig cfg;
  cfg.k = 5;
  cfg.m = 3;
  cfg.window = 10;
  const std::string read = "ACGTACGTNNACGTACGT";
  const auto supermers = build_supermers_read(read, cfg, 4);
  std::uint64_t total_kmers = 0;
  for (const auto& d : supermers) {
    total_kmers += static_cast<std::uint64_t>(kmers_in_supermer(d.smer, cfg.k));
  }
  EXPECT_EQ(total_kmers, count_kmers(read, cfg.k));  // 4 + 4, no spanning
}

// --- maximal (reference) builder ---

TEST(MaximalSupermerTest, AdjacentSupermersHaveDistinctMinimizers) {
  MinimizerPolicy policy(MinimizerOrder::kRandomized, 5);
  Xoshiro256 rng(36);
  const std::string read = random_seq(rng, 300);
  const auto supermers = build_supermers_maximal(read, 11, policy, 4);
  for (std::size_t i = 1; i < supermers.size(); ++i) {
    EXPECT_NE(supermers[i - 1].minimizer, supermers[i].minimizer);
  }
}

TEST(MaximalSupermerTest, CoversTheWholeRead) {
  MinimizerPolicy policy(MinimizerOrder::kLexicographic, 4);
  Xoshiro256 rng(37);
  const std::string read = random_seq(rng, 200);
  const int k = 9;
  const auto supermers = build_supermers_maximal(read, k, policy, 4);
  std::uint64_t total_kmers = 0;
  for (const auto& s : supermers) {
    total_kmers += s.bases.size() - static_cast<std::size_t>(k) + 1;
  }
  EXPECT_EQ(total_kmers, read.size() - static_cast<std::size_t>(k) + 1);
}

TEST(MaximalSupermerTest, WindowedIsARefinementOfMaximal) {
  // Concatenating the windowed supermers' k-mer streams reproduces the
  // maximal ones': windows only introduce extra cuts.
  SupermerConfig cfg;
  cfg.k = 11;
  cfg.m = 5;
  cfg.window = 8;
  Xoshiro256 rng(38);
  const std::string read = random_seq(rng, 250);

  std::vector<KmerCode> windowed_stream;
  for (const auto& d : build_supermers_read(read, cfg, 3)) {
    for_each_kmer_in_supermer(d.smer, cfg.k, [&](KmerCode code) {
      windowed_stream.push_back(code);
    });
  }
  std::vector<KmerCode> maximal_stream;
  const io::BaseEncoding enc = cfg.policy().encoding();
  for (const auto& s :
       build_supermers_maximal(read, cfg.k, cfg.policy(), 3)) {
    for (const KmerCode code : extract_kmers(s.bases, cfg.k, enc)) {
      maximal_stream.push_back(code);
    }
  }
  EXPECT_EQ(windowed_stream, maximal_stream);
  EXPECT_GE(build_supermers_read(read, cfg, 3).size(),
            build_supermers_maximal(read, cfg.k, cfg.policy(), 3).size());
}

TEST(MaximalSupermerTest, DestMatchesMinimizerPartition) {
  MinimizerPolicy policy(MinimizerOrder::kRandomized, 7);
  Xoshiro256 rng(39);
  const std::string read = random_seq(rng, 120);
  for (const auto& s : build_supermers_maximal(read, 17, policy, 11)) {
    EXPECT_EQ(s.dest, minimizer_partition(s.minimizer, 11));
  }
}

TEST(SupermerCompressionTest, FewerSupermersThanKmers) {
  // The whole point of §IV: supermers reduce the number of exchanged units.
  SupermerConfig cfg;  // paper defaults
  Xoshiro256 rng(40);
  const std::string read = random_seq(rng, 2000);
  const auto supermers = build_supermers_read(read, cfg, 8);
  const std::uint64_t nkmers = count_kmers(read, cfg.k);
  EXPECT_LT(supermers.size(), nkmers / 2);
}

}  // namespace
}  // namespace dedukt::kmer
