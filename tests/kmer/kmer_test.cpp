#include "dedukt/kmer/kmer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dedukt/util/rng.hpp"

namespace dedukt::kmer {
namespace {

using io::BaseEncoding;

std::string random_seq(Xoshiro256& rng, int len) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string s;
  for (int i = 0; i < len; ++i) s.push_back(kBases[rng.below(4)]);
  return s;
}

TEST(KmerPackTest, KnownStandardCodes) {
  // A=00 C=01 G=10 T=11, first base most significant.
  EXPECT_EQ(pack("A", BaseEncoding::kStandard), 0b00u);
  EXPECT_EQ(pack("T", BaseEncoding::kStandard), 0b11u);
  EXPECT_EQ(pack("ACGT", BaseEncoding::kStandard), 0b00011011u);
  EXPECT_EQ(pack("GTC", BaseEncoding::kStandard), 0b101101u);
}

TEST(KmerPackTest, KnownRandomizedCodes) {
  // §IV-A order: A=1, C=0, T=2, G=3.
  EXPECT_EQ(pack("A", BaseEncoding::kRandomized), 1u);
  EXPECT_EQ(pack("C", BaseEncoding::kRandomized), 0u);
  EXPECT_EQ(pack("T", BaseEncoding::kRandomized), 2u);
  EXPECT_EQ(pack("G", BaseEncoding::kRandomized), 3u);
  EXPECT_EQ(pack("AC", BaseEncoding::kRandomized), (1u << 2) | 0u);
}

class PackRoundTrip : public ::testing::TestWithParam<BaseEncoding> {};

TEST_P(PackRoundTrip, UnpackInvertsPackAcrossLengths) {
  Xoshiro256 rng(3);
  for (int len = 1; len <= kMaxPackedK; ++len) {
    const std::string s = random_seq(rng, len);
    EXPECT_EQ(unpack(pack(s, GetParam()), len, GetParam()), s);
  }
}

TEST_P(PackRoundTrip, IntegerOrderIsLexicographicOrder) {
  // The property the minimizer orderings rely on: for equal-length codes,
  // unsigned comparison == lexicographic comparison under the encoding.
  Xoshiro256 rng(4);
  const BaseEncoding enc = GetParam();
  for (int trial = 0; trial < 200; ++trial) {
    const std::string a = random_seq(rng, 9);
    const std::string b = random_seq(rng, 9);
    // Compare base-by-base in encoding order.
    bool lex_less = false;
    for (int i = 0; i < 9; ++i) {
      const auto ca = io::encode_base(a[i], enc);
      const auto cb = io::encode_base(b[i], enc);
      if (ca != cb) {
        lex_less = ca < cb;
        break;
      }
    }
    if (a != b) {
      EXPECT_EQ(pack(a, enc) < pack(b, enc), lex_less)
          << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothEncodings, PackRoundTrip,
                         ::testing::Values(BaseEncoding::kStandard,
                                           BaseEncoding::kRandomized));

TEST(KmerPackTest, TopBitsStayZeroSoSentinelIsSafe) {
  // k <= 31 codes always have the top 2 bits clear, so kInvalidCode can
  // never collide with a real k-mer.
  const std::string all_t(kMaxPackedK, 'T');
  const KmerCode max_code = pack(all_t, BaseEncoding::kStandard);
  EXPECT_LT(max_code, kInvalidCode);
  EXPECT_EQ(max_code >> 62, 0u);
}

TEST(KmerPackTest, RejectsBadLengths) {
  EXPECT_THROW(pack("", BaseEncoding::kStandard), PreconditionError);
  EXPECT_THROW(pack(std::string(32, 'A'), BaseEncoding::kStandard),
               PreconditionError);
}

TEST(KmerPackTest, RejectsNonAcgt) {
  EXPECT_THROW(pack("ACNGT", BaseEncoding::kStandard), ParseError);
}

TEST(CodeMaskTest, MasksExpectedBits) {
  EXPECT_EQ(code_mask(1), 0b11u);
  EXPECT_EQ(code_mask(4), 0xFFu);
  EXPECT_EQ(code_mask(31), (KmerCode{1} << 62) - 1);
  EXPECT_EQ(code_mask(32), ~KmerCode{0});
}

TEST(SubCodeTest, ExtractsMmers) {
  const KmerCode code = pack("ACGTACG", BaseEncoding::kStandard);
  EXPECT_EQ(sub_code(code, 7, 0, 3), pack("ACG", BaseEncoding::kStandard));
  EXPECT_EQ(sub_code(code, 7, 2, 3), pack("GTA", BaseEncoding::kStandard));
  EXPECT_EQ(sub_code(code, 7, 4, 3), pack("ACG", BaseEncoding::kStandard));
  EXPECT_EQ(sub_code(code, 7, 0, 7), code);
}

TEST(AppendBaseTest, SlidesWindow) {
  const KmerCode acg = pack("ACG", BaseEncoding::kStandard);
  const KmerCode cgt =
      append_base(acg, io::encode_base('T', BaseEncoding::kStandard)) &
      code_mask(3);
  EXPECT_EQ(cgt, pack("CGT", BaseEncoding::kStandard));
}

class RevCompTest : public ::testing::TestWithParam<BaseEncoding> {};

TEST_P(RevCompTest, MatchesStringReverseComplement) {
  Xoshiro256 rng(5);
  for (int len : {1, 2, 8, 17, 31}) {
    const std::string s = random_seq(rng, len);
    const KmerCode code = pack(s, GetParam());
    EXPECT_EQ(unpack(reverse_complement(code, len, GetParam()), len,
                     GetParam()),
              io::reverse_complement(s));
  }
}

TEST_P(RevCompTest, IsInvolution) {
  Xoshiro256 rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string s = random_seq(rng, 17);
    const KmerCode code = pack(s, GetParam());
    EXPECT_EQ(reverse_complement(
                  reverse_complement(code, 17, GetParam()), 17, GetParam()),
              code);
  }
}

INSTANTIATE_TEST_SUITE_P(BothEncodings, RevCompTest,
                         ::testing::Values(BaseEncoding::kStandard,
                                           BaseEncoding::kRandomized));

TEST(CanonicalTest, PicksTheSmaller) {
  const KmerCode fwd = pack("TTTT", BaseEncoding::kStandard);
  const KmerCode rc = pack("AAAA", BaseEncoding::kStandard);
  EXPECT_EQ(canonical(fwd, 4, BaseEncoding::kStandard), rc);
  EXPECT_EQ(canonical(rc, 4, BaseEncoding::kStandard), rc);
}

TEST(CanonicalTest, StrandInvariant) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
    std::string s;
    for (int i = 0; i < 17; ++i) s.push_back(kBases[rng.below(4)]);
    const KmerCode a = pack(s, BaseEncoding::kStandard);
    const KmerCode b =
        pack(io::reverse_complement(s), BaseEncoding::kStandard);
    EXPECT_EQ(canonical(a, 17, BaseEncoding::kStandard),
              canonical(b, 17, BaseEncoding::kStandard));
  }
}

}  // namespace
}  // namespace dedukt::kmer
