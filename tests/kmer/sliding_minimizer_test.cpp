// SlidingMinimizer must be bit-identical to the O(k)-per-call rescan
// (minimizer_of) — same m-mer, same leftmost-wins tie breaking — and the
// supermer builders that now ride on it must emit byte-identical output
// to a naive builder that still rescans every k-mer.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dedukt/kmer/extract.hpp"
#include "dedukt/kmer/minimizer.hpp"
#include "dedukt/kmer/supermer.hpp"
#include "dedukt/util/rng.hpp"

namespace dedukt::kmer {
namespace {

std::string random_fragment(Xoshiro256& rng, std::size_t len,
                            bool low_entropy) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string seq;
  seq.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    // Low-entropy fragments force long equal-score runs, the regime where
    // a sloppy (non-strict) deque comparison would break leftmost-wins.
    seq.push_back(kBases[rng.below(low_entropy ? 2 : 4)]);
  }
  return seq;
}

TEST(SlidingMinimizerTest, MatchesRescanOnRandomFragments) {
  Xoshiro256 rng(401);
  const MinimizerOrder orders[] = {MinimizerOrder::kLexicographic,
                                   MinimizerOrder::kKmc2,
                                   MinimizerOrder::kRandomized};
  for (int trial = 0; trial < 200; ++trial) {
    const MinimizerOrder order = orders[rng.below(3)];
    const int m = 3 + static_cast<int>(rng.below(8));          // 3..10
    const int k = m + 1 + static_cast<int>(rng.below(20));     // m+1..m+20
    if (k > kMaxPackedK) continue;
    const MinimizerPolicy policy(order, m);
    const std::string seq = random_fragment(
        rng, static_cast<std::size_t>(k) + rng.below(120), trial % 2 == 0);
    if (seq.size() < static_cast<std::size_t>(k)) continue;

    SlidingMinimizer sliding(policy, k);
    for_each_kmer(seq, k, policy.encoding(), [&](KmerCode code) {
      ASSERT_EQ(sliding.push(code), minimizer_of(code, k, policy))
          << "order=" << to_string(order) << " k=" << k << " m=" << m
          << " seq=" << seq;
    });
  }
}

TEST(SlidingMinimizerTest, ResetRewindsForANewFragment) {
  const MinimizerPolicy policy(MinimizerOrder::kRandomized, 4);
  const int k = 9;
  SlidingMinimizer sliding(policy, k);
  Xoshiro256 rng(402);
  for (int frag = 0; frag < 20; ++frag) {
    sliding.reset();
    const std::string seq = random_fragment(rng, 40, false);
    for_each_kmer(seq, k, policy.encoding(), [&](KmerCode code) {
      ASSERT_EQ(sliding.push(code), minimizer_of(code, k, policy));
    });
  }
}

// The windowed builder exactly as it was before the sliding scan: one
// minimizer_of rescan per k-mer.
void naive_build_supermers(std::string_view fragment,
                           const SupermerConfig& config, std::uint32_t parts,
                           std::vector<DestinedSupermer>& out) {
  const int k = config.k;
  if (fragment.size() < static_cast<std::size_t>(k)) return;
  const MinimizerPolicy policy = config.policy();
  const std::size_t nkmers =
      fragment.size() - static_cast<std::size_t>(k) + 1;
  std::vector<KmerCode> codes;
  for_each_kmer(fragment, k, policy.encoding(),
                [&](KmerCode c) { codes.push_back(c); });
  const auto window = static_cast<std::size_t>(config.window);
  for (std::size_t wstart = 0; wstart < nkmers; wstart += window) {
    const std::size_t wend = std::min(wstart + window, nkmers);
    PackedSupermer current{codes[wstart], static_cast<std::uint8_t>(k)};
    KmerCode prev_min = minimizer_of(codes[wstart], k, policy);
    for (std::size_t p = wstart + 1; p < wend; ++p) {
      const KmerCode minimizer = minimizer_of(codes[p], k, policy);
      if (minimizer == prev_min) {
        current.bases = append_base(
            current.bases, static_cast<io::BaseCode>(codes[p] & 3));
        current.len += 1;
      } else {
        out.push_back({current, minimizer_partition(prev_min, parts)});
        current = PackedSupermer{codes[p], static_cast<std::uint8_t>(k)};
        prev_min = minimizer;
      }
    }
    out.push_back({current, minimizer_partition(prev_min, parts)});
  }
}

TEST(SlidingMinimizerTest, BuildSupermersBitIdenticalToNaive) {
  Xoshiro256 rng(403);
  const MinimizerOrder orders[] = {MinimizerOrder::kLexicographic,
                                   MinimizerOrder::kKmc2,
                                   MinimizerOrder::kRandomized};
  for (int trial = 0; trial < 100; ++trial) {
    SupermerConfig config;
    config.order = orders[rng.below(3)];
    config.m = 3 + static_cast<int>(rng.below(5));           // 3..7
    config.k = config.m + 2 + static_cast<int>(rng.below(10));
    config.window = 1 + static_cast<int>(rng.below(15));
    if (config.max_supermer_bases() > kMaxPackedK) continue;
    const std::uint32_t parts = 1 + rng.below(8);
    const std::string seq =
        random_fragment(rng, static_cast<std::size_t>(config.k) +
                                 rng.below(200), trial % 2 == 0);
    if (seq.size() < static_cast<std::size_t>(config.k)) continue;

    std::vector<DestinedSupermer> fast, naive;
    build_supermers(seq, config, parts, fast);
    naive_build_supermers(seq, config, parts, naive);

    ASSERT_EQ(fast.size(), naive.size()) << "trial " << trial;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      ASSERT_EQ(fast[i].smer, naive[i].smer) << "trial " << trial;
      ASSERT_EQ(fast[i].dest, naive[i].dest) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace dedukt::kmer
