// Wide (two-word) supermers — the packing extension that lifts the
// paper's single-word window cap (§IV-C).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "dedukt/kmer/supermer.hpp"
#include "dedukt/util/rng.hpp"

namespace dedukt::kmer {
namespace {

std::string random_seq(Xoshiro256& rng, int len) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string s;
  for (int i = 0; i < len; ++i) s.push_back(kBases[rng.below(4)]);
  return s;
}

SupermerConfig wide_config(int window) {
  SupermerConfig cfg;
  cfg.window = window;
  cfg.wide = true;
  return cfg;
}

TEST(WideSupermerConfigTest, AcceptsWindowsBeyondSingleWord) {
  EXPECT_NO_THROW(wide_config(47).validate());  // 17+47-1 = 63 bases
  EXPECT_THROW(wide_config(48).validate(), PreconditionError);
  // Without `wide` the same window is rejected.
  SupermerConfig narrow;
  narrow.window = 47;
  EXPECT_THROW(narrow.validate(), PreconditionError);
}

TEST(WideSupermerTest, DecompositionReconstructsKmerMultiset) {
  Xoshiro256 rng(91);
  for (const int window : {15, 30, 47}) {
    const SupermerConfig cfg = wide_config(window);
    const io::BaseEncoding enc = cfg.policy().encoding();
    for (int trial = 0; trial < 10; ++trial) {
      const std::string read = random_seq(rng, 400);
      std::map<KmerCode, int> reconstructed;
      for (const auto& d : build_wide_supermers_read(read, cfg, 7)) {
        for_each_kmer_in_wide_supermer(
            d.smer, cfg.k, [&](KmerCode code) { ++reconstructed[code]; });
      }
      std::map<KmerCode, int> expected;
      for (const KmerCode code : extract_kmers(read, cfg.k, enc)) {
        ++expected[code];
      }
      EXPECT_EQ(reconstructed, expected) << "window=" << window;
    }
  }
}

TEST(WideSupermerTest, AgreesWithNarrowBuilderAtWindow15) {
  // At the paper's window the wide builder must produce the same supermer
  // sequence, just in the wider representation.
  Xoshiro256 rng(92);
  const std::string read = random_seq(rng, 500);
  SupermerConfig narrow;
  const SupermerConfig wide = wide_config(15);

  const auto narrow_out = build_supermers_read(read, narrow, 5);
  const auto wide_out = build_wide_supermers_read(read, wide, 5);
  ASSERT_EQ(narrow_out.size(), wide_out.size());
  for (std::size_t i = 0; i < narrow_out.size(); ++i) {
    EXPECT_EQ(narrow_out[i].dest, wide_out[i].dest);
    EXPECT_EQ(narrow_out[i].smer.len, wide_out[i].smer.len);
    EXPECT_EQ(static_cast<WideCode>(narrow_out[i].smer.bases),
              from_key(wide_out[i].smer.bases));
  }
}

TEST(WideSupermerTest, LargerWindowsYieldFewerSupermers) {
  Xoshiro256 rng(93);
  const std::string read = random_seq(rng, 3000);
  std::size_t previous = ~std::size_t{0};
  for (const int window : {7, 15, 31, 47}) {
    const auto supermers =
        build_wide_supermers_read(read, wide_config(window), 5);
    EXPECT_LT(supermers.size(), previous) << "window=" << window;
    previous = supermers.size();
    for (const auto& d : supermers) {
      EXPECT_LE(static_cast<int>(d.smer.len), 17 + window - 1);
    }
  }
}

TEST(WideSupermerTest, DestMatchesMinimizerPartition) {
  Xoshiro256 rng(94);
  const SupermerConfig cfg = wide_config(40);
  const MinimizerPolicy policy = cfg.policy();
  const std::string read = random_seq(rng, 300);
  for (const auto& d : build_wide_supermers_read(read, cfg, 13)) {
    for_each_kmer_in_wide_supermer(d.smer, cfg.k, [&](KmerCode code) {
      EXPECT_EQ(minimizer_partition(minimizer_of(code, cfg.k, policy), 13),
                d.dest);
    });
  }
}

TEST(WideSupermerTest, RequiresWideFlag) {
  std::vector<DestinedWideSupermer> out;
  SupermerConfig narrow;  // wide = false
  EXPECT_THROW(build_wide_supermers("ACGTACGTACGTACGTACGT", narrow, 4, out),
               PreconditionError);
}

}  // namespace
}  // namespace dedukt::kmer
