#include "dedukt/kmer/theory.hpp"

#include <gtest/gtest.h>

#include "dedukt/util/error.hpp"

namespace dedukt::kmer::theory {
namespace {

Params base_params() {
  Params p;
  p.total_bases = 1e9;   // D
  p.avg_read_length = 10'000;  // L
  p.k = 17;
  p.nprocs = 384;
  return p;
}

TEST(TheoryTest, TotalKmersFormula) {
  // K = D/L * (L - k + 1)
  const Params p = base_params();
  EXPECT_DOUBLE_EQ(total_kmers(p), 1e9 / 1e4 * (1e4 - 17 + 1));
}

TEST(TheoryTest, KmerVolumePerProc) {
  const Params p = base_params();
  const double K = total_kmers(p);
  const double P = 384;
  EXPECT_DOUBLE_EQ(kmer_volume_per_proc(p), (P - 1) / P * K / P * 17);
}

TEST(TheoryTest, SupermerCountsExactVsPaperApproximation) {
  const Params p = base_params();
  const double s = 25.0;
  // Exact: each length-s supermer covers s-k+1 k-mers.
  EXPECT_DOUBLE_EQ(total_supermers_exact(p, s), total_kmers(p) / (s - 17 + 1));
  // Paper's §IV-D closed form.
  EXPECT_DOUBLE_EQ(total_supermers_paper(p, s),
                   1e9 / 1e4 * (1e4 - 25 + 1));
  // They approximate each other for reads >> supermers only in order of
  // magnitude; both must be positive and finite.
  EXPECT_GT(total_supermers_exact(p, s), 0);
  EXPECT_GT(total_supermers_paper(p, s), 0);
}

TEST(TheoryTest, SupermerVolumeSmallerThanKmerVolume) {
  const Params p = base_params();
  for (double s : {20.0, 25.0, 31.0}) {
    EXPECT_LT(supermer_volume_per_proc(p, s), kmer_volume_per_proc(p));
  }
}

TEST(TheoryTest, ReductionGrowsWithSupermerLength) {
  const Params p = base_params();
  EXPECT_LT(reduction_exact(p, 20.0), reduction_exact(p, 30.0));
}

TEST(TheoryTest, ReductionExactFormula) {
  const Params p = base_params();
  const double s = 25.0;
  // (K*k) / (S*s) with S = K/(s-k+1) -> k*(s-k+1)/s.
  EXPECT_NEAR(reduction_exact(p, s), 17.0 * (25 - 17 + 1) / 25.0, 1e-12);
}

TEST(TheoryTest, PaperEstimateIsSMinusK) {
  EXPECT_DOUBLE_EQ(reduction_paper_estimate(17, 21.5), 4.5);
}

TEST(TheoryTest, WireBytesMatchImplementationLayout) {
  // k-mers ship as one 8-byte word; supermers as word + length byte (§V-D
  // "this approach requires an extra byte of communication").
  EXPECT_EQ(kmer_wire_bytes(1000), 8000u);
  EXPECT_EQ(supermer_wire_bytes(1000), 9000u);
}

TEST(TheoryTest, WindowFifteenReachesPaperReduction) {
  // §V-D: "a significant communication reduction of 4x using a window
  // length of 15". With k=17, w=15 the best case is s = 31:
  // wire ratio = (K*8) / (S*9) = 8*(s-k+1)/9 = 8*15/9 ≈ 13x at the limit;
  // in practice s ≈ 21-24, giving ≈ 4-6x. Check the formula at s=21.5.
  const Params p = base_params();
  const double K = total_kmers(p);
  const double s = 21.5;
  const double S = total_supermers_exact(p, s);
  const double wire_reduction =
      static_cast<double>(kmer_wire_bytes(static_cast<std::uint64_t>(K))) /
      static_cast<double>(
          supermer_wire_bytes(static_cast<std::uint64_t>(S)));
  EXPECT_GT(wire_reduction, 3.5);
  EXPECT_LT(wire_reduction, 6.0);
}

TEST(TheoryTest, RejectsInvalidParams) {
  Params p = base_params();
  p.total_bases = 0;
  EXPECT_THROW(total_kmers(p), PreconditionError);
  p = base_params();
  p.avg_read_length = 5;  // < k
  EXPECT_THROW(total_kmers(p), PreconditionError);
  p = base_params();
  EXPECT_THROW(total_supermers_exact(p, 10.0), PreconditionError);  // s < k
}

}  // namespace
}  // namespace dedukt::kmer::theory
