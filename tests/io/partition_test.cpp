#include "dedukt/io/partition.hpp"

#include <gtest/gtest.h>

#include "dedukt/io/synthetic.hpp"
#include "dedukt/util/error.hpp"
#include "dedukt/util/stats.hpp"

namespace dedukt::io {
namespace {

ReadBatch sample_batch() {
  GenomeSpec gspec;
  gspec.length = 50'000;
  ReadSpec rspec;
  rspec.coverage = 4.0;
  rspec.mean_read_length = 900;
  rspec.min_read_length = 100;
  return generate_dataset(gspec, rspec);
}

TEST(PartitionTest, EveryReadLandsExactlyOnce) {
  const ReadBatch batch = sample_batch();
  const auto parts = partition_by_bases(batch, 7);
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  EXPECT_EQ(total, batch.size());
}

TEST(PartitionTest, PreservesReadOrderWithinConcatenation) {
  const ReadBatch batch = sample_batch();
  const auto parts = partition_by_bases(batch, 5);
  std::vector<std::string> ids;
  for (const auto& part : parts) {
    for (const auto& read : part.reads) ids.push_back(read.id);
  }
  ASSERT_EQ(ids.size(), batch.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], batch.reads[i].id);
  }
}

TEST(PartitionTest, BaseBalancedWithinOneReadLength) {
  const ReadBatch batch = sample_batch();
  const int nparts = 8;
  const auto parts = partition_by_bases(batch, nparts);
  std::vector<std::uint64_t> loads;
  for (const auto& part : parts) loads.push_back(part.total_bases());
  // §IV-D assumes roughly uniform partitioning; allow modest slack since
  // blocks are read-granular.
  EXPECT_LT(load_imbalance(loads), 1.5);
}

TEST(PartitionTest, SinglePartIsIdentity) {
  const ReadBatch batch = sample_batch();
  const auto parts = partition_by_bases(batch, 1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), batch.size());
}

TEST(PartitionTest, MorePartsThanReads) {
  ReadBatch batch;
  batch.reads.push_back({"a", "ACGT", ""});
  batch.reads.push_back({"b", "ACGT", ""});
  const auto parts = partition_by_bases(batch, 10);
  ASSERT_EQ(parts.size(), 10u);
  std::size_t total = 0, nonempty = 0;
  for (const auto& part : parts) {
    total += part.size();
    if (!part.empty()) ++nonempty;
  }
  EXPECT_EQ(total, 2u);
  EXPECT_LE(nonempty, 2u);
}

TEST(PartitionTest, RejectsNonPositiveParts) {
  ReadBatch batch;
  EXPECT_THROW(partition_by_bases(batch, 0), PreconditionError);
  EXPECT_THROW(partition_round_robin(batch, -1), PreconditionError);
}

TEST(RoundRobinTest, DistributesByIndex) {
  ReadBatch batch;
  for (int i = 0; i < 10; ++i) {
    batch.reads.push_back({"r" + std::to_string(i), "ACGT", ""});
  }
  const auto parts = partition_round_robin(batch, 3);
  EXPECT_EQ(parts[0].size(), 4u);  // 0,3,6,9
  EXPECT_EQ(parts[1].size(), 3u);  // 1,4,7
  EXPECT_EQ(parts[2].size(), 3u);  // 2,5,8
  EXPECT_EQ(parts[0].reads[1].id, "r3");
}

TEST(RoundRobinTest, EmptyBatch) {
  ReadBatch batch;
  const auto parts = partition_round_robin(batch, 4);
  for (const auto& part : parts) EXPECT_TRUE(part.empty());
}

}  // namespace
}  // namespace dedukt::io
