#include "dedukt/io/fasta.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dedukt/util/error.hpp"

namespace dedukt::io {
namespace {

TEST(FastaTest, ParsesSingleRecord) {
  std::istringstream in(">seq1 description\nACGT\n");
  const ReadBatch batch = read_fasta(in);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.reads[0].id, "seq1 description");
  EXPECT_EQ(batch.reads[0].bases, "ACGT");
  EXPECT_TRUE(batch.reads[0].quality.empty());
}

TEST(FastaTest, JoinsMultiLineSequences) {
  std::istringstream in(">s\nACGT\nTTAA\nGG\n");
  const ReadBatch batch = read_fasta(in);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.reads[0].bases, "ACGTTTAAGG");
}

TEST(FastaTest, ParsesMultipleRecords) {
  std::istringstream in(">a\nAC\n>b\nGT\n>c\nTT\n");
  const ReadBatch batch = read_fasta(in);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.reads[1].id, "b");
  EXPECT_EQ(batch.reads[2].bases, "TT");
}

TEST(FastaTest, UpperCasesBases) {
  std::istringstream in(">s\nacgt\n");
  EXPECT_EQ(read_fasta(in).reads[0].bases, "ACGT");
}

TEST(FastaTest, HandlesCrLf) {
  std::istringstream in(">s\r\nACGT\r\n");
  const ReadBatch batch = read_fasta(in);
  EXPECT_EQ(batch.reads[0].id, "s");
  EXPECT_EQ(batch.reads[0].bases, "ACGT");
}

TEST(FastaTest, SkipsBlankLines) {
  std::istringstream in("\n>s\n\nAC\n\nGT\n");
  EXPECT_EQ(read_fasta(in).reads[0].bases, "ACGT");
}

TEST(FastaTest, SequenceBeforeHeaderThrows) {
  std::istringstream in("ACGT\n>s\nAC\n");
  EXPECT_THROW(read_fasta(in), ParseError);
}

TEST(FastaTest, EmptyRecordThrows) {
  std::istringstream in(">only-header\n");
  EXPECT_THROW(read_fasta(in), ParseError);
}

TEST(FastaTest, EmptyInputGivesEmptyBatch) {
  std::istringstream in("");
  EXPECT_TRUE(read_fasta(in).empty());
}

TEST(FastaTest, RoundTripThroughWriter) {
  ReadBatch batch;
  batch.reads.push_back({"alpha", "ACGTACGTACGT", ""});
  batch.reads.push_back({"beta", "TTTT", ""});
  std::ostringstream out;
  write_fasta(out, batch, /*line_width=*/5);
  std::istringstream in(out.str());
  const ReadBatch parsed = read_fasta(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.reads[0].id, "alpha");
  EXPECT_EQ(parsed.reads[0].bases, "ACGTACGTACGT");
  EXPECT_EQ(parsed.reads[1].bases, "TTTT");
}

TEST(FastaTest, WriterZeroWidthSingleLine) {
  ReadBatch batch;
  batch.reads.push_back({"x", "ACGTACGT", ""});
  std::ostringstream out;
  write_fasta(out, batch, 0);
  EXPECT_EQ(out.str(), ">x\nACGTACGT\n");
}

TEST(FastaTest, MissingFileThrows) {
  EXPECT_THROW(read_fasta_file("/nonexistent/path.fa"), ParseError);
}

}  // namespace
}  // namespace dedukt::io
