#include "dedukt/io/datasets.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace dedukt::io {
namespace {

TEST(DatasetsTest, HasAllSixTable1Rows) {
  const auto& presets = table1_presets();
  ASSERT_EQ(presets.size(), 6u);
  EXPECT_EQ(presets[0].short_name, "E. coli 30X");
  EXPECT_EQ(presets[5].short_name, "H. sapien 54X");
}

TEST(DatasetsTest, RowOrderMatchesPaper) {
  const auto& presets = table1_presets();
  EXPECT_EQ(presets[1].key, "paeruginosa30x");
  EXPECT_EQ(presets[2].key, "vvulnificus30x");
  EXPECT_EQ(presets[3].key, "abaumannii30x");
  EXPECT_EQ(presets[4].key, "celegans40x");
}

TEST(DatasetsTest, FindPresetByKey) {
  const auto preset = find_preset("ecoli30x");
  ASSERT_TRUE(preset.has_value());
  EXPECT_EQ(preset->species, "Escherichia coli MG1655 strain");
  EXPECT_DOUBLE_EQ(preset->coverage, 85.0);  // data-implied, see datasets.cpp
}

TEST(DatasetsTest, UnknownKeyReturnsNullopt) {
  EXPECT_FALSE(find_preset("nosuchdataset").has_value());
}

TEST(DatasetsTest, CoveragesMatchPaperDataVolumes) {
  // Coverages are chosen so genome_size * coverage reproduces the paper's
  // FASTQ volumes and Table II k-mer counts. E. coli is nominally "30X"
  // but its file size and k-mer count imply ~85x (see datasets.cpp).
  EXPECT_DOUBLE_EQ(find_preset("ecoli30x")->coverage, 85.0);
  for (const std::string key :
       {"paeruginosa30x", "vvulnificus30x", "abaumannii30x"}) {
    EXPECT_DOUBLE_EQ(find_preset(key)->coverage, 30.0);
  }
  EXPECT_DOUBLE_EQ(find_preset("celegans40x")->coverage, 40.0);
  EXPECT_DOUBLE_EQ(find_preset("hsapiens54x")->coverage, 54.0);
}

TEST(DatasetsTest, ImpliedKmerCountsMatchTable2Magnitudes) {
  // Paper Table II k-mer totals vs genome_size * coverage (= bases ≈
  // k-mers for long reads). Each should agree within 25%.
  const std::map<std::string, double> paper_kmers = {
      {"ecoli30x", 412e6},      {"paeruginosa30x", 187e6},
      {"vvulnificus30x", 154e6}, {"abaumannii30x", 129e6},
      {"celegans40x", 4.7e9},   {"hsapiens54x", 167e9}};
  for (const auto& [key, expected] : paper_kmers) {
    const auto preset = *find_preset(key);
    const double implied =
        static_cast<double>(preset.genome_size) * preset.coverage;
    EXPECT_NEAR(implied / expected, 1.0, 0.25) << key;
  }
}

TEST(DatasetsTest, MakeDatasetScalesGenome) {
  const auto preset = *find_preset("ecoli30x");
  const ReadBatch reads = make_dataset(preset, /*scale=*/100, /*seed=*/1);
  // 4.64 Mb / 100 at 30x coverage ≈ 1.39 Mbases of reads.
  const double expected =
      static_cast<double>(preset.genome_size) / 100.0 * preset.coverage;
  EXPECT_NEAR(static_cast<double>(reads.total_bases()), expected,
              expected * 0.05);
}

TEST(DatasetsTest, DatasetIsDeterministic) {
  const auto preset = *find_preset("vvulnificus30x");
  const ReadBatch a = make_dataset(preset, 200, 7);
  const ReadBatch b = make_dataset(preset, 200, 7);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.reads[0].bases, b.reads[0].bases);
}

TEST(DatasetsTest, ExtremeScaleClampsToMinimumGenome) {
  const auto preset = *find_preset("abaumannii30x");
  const GenomeSpec spec = genome_spec_for(preset, 1'000'000'000, 1);
  EXPECT_GE(spec.length, 10'000u);
}

TEST(DatasetsTest, GenomeSpecCarriesGcContent) {
  const auto preset = *find_preset("paeruginosa30x");
  const GenomeSpec spec = genome_spec_for(preset, 1000, 1);
  EXPECT_DOUBLE_EQ(spec.gc_content, 0.665);
}

TEST(DatasetsTest, PaperFastqSizesRecorded) {
  EXPECT_EQ(find_preset("ecoli30x")->paper_fastq_bytes, 792ull << 20);
  EXPECT_EQ(find_preset("hsapiens54x")->paper_fastq_bytes, 317ull << 30);
}

}  // namespace
}  // namespace dedukt::io
