#include "dedukt/io/dna.hpp"

#include <gtest/gtest.h>

namespace dedukt::io {
namespace {

TEST(DnaTest, StandardEncodingOrder) {
  EXPECT_EQ(encode_base('A', BaseEncoding::kStandard), 0);
  EXPECT_EQ(encode_base('C', BaseEncoding::kStandard), 1);
  EXPECT_EQ(encode_base('G', BaseEncoding::kStandard), 2);
  EXPECT_EQ(encode_base('T', BaseEncoding::kStandard), 3);
}

TEST(DnaTest, RandomizedEncodingMatchesPaper) {
  // §IV-A: "we map A = 1, C = 0, T = 2, G = 3".
  EXPECT_EQ(encode_base('A', BaseEncoding::kRandomized), 1);
  EXPECT_EQ(encode_base('C', BaseEncoding::kRandomized), 0);
  EXPECT_EQ(encode_base('T', BaseEncoding::kRandomized), 2);
  EXPECT_EQ(encode_base('G', BaseEncoding::kRandomized), 3);
}

TEST(DnaTest, LowerCaseAccepted) {
  EXPECT_EQ(encode_base('a', BaseEncoding::kStandard),
            encode_base('A', BaseEncoding::kStandard));
  EXPECT_EQ(encode_base('g', BaseEncoding::kRandomized),
            encode_base('G', BaseEncoding::kRandomized));
}

TEST(DnaTest, NonAcgtThrows) {
  EXPECT_THROW(encode_base('N', BaseEncoding::kStandard), ParseError);
  EXPECT_THROW(encode_base('X', BaseEncoding::kRandomized), ParseError);
  EXPECT_THROW(encode_base('\xFF', BaseEncoding::kStandard), ParseError);
}

TEST(DnaTest, EncodeOrInvalidReturnsNegativeForJunk) {
  EXPECT_LT(encode_base_or_invalid('N', BaseEncoding::kStandard), 0);
  EXPECT_LT(encode_base_or_invalid('\xFF', BaseEncoding::kStandard), 0);
  EXPECT_GE(encode_base_or_invalid('T', BaseEncoding::kStandard), 0);
}

class EncodingRoundTrip : public ::testing::TestWithParam<BaseEncoding> {};

TEST_P(EncodingRoundTrip, DecodeInvertsEncode) {
  for (char base : {'A', 'C', 'G', 'T'}) {
    EXPECT_EQ(decode_base(encode_base(base, GetParam()), GetParam()), base);
  }
}

TEST_P(EncodingRoundTrip, CodesAreAPermutation) {
  bool seen[4] = {false, false, false, false};
  for (char base : {'A', 'C', 'G', 'T'}) {
    seen[encode_base(base, GetParam())] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST_P(EncodingRoundTrip, ComplementIsAnInvolution) {
  for (BaseCode code = 0; code < 4; ++code) {
    EXPECT_EQ(complement_code(complement_code(code, GetParam()), GetParam()),
              code);
  }
}

TEST_P(EncodingRoundTrip, ComplementMatchesBiology) {
  auto comp = [&](char base) {
    return decode_base(complement_code(encode_base(base, GetParam()),
                                       GetParam()),
                       GetParam());
  };
  EXPECT_EQ(comp('A'), 'T');
  EXPECT_EQ(comp('T'), 'A');
  EXPECT_EQ(comp('C'), 'G');
  EXPECT_EQ(comp('G'), 'C');
}

INSTANTIATE_TEST_SUITE_P(BothEncodings, EncodingRoundTrip,
                         ::testing::Values(BaseEncoding::kStandard,
                                           BaseEncoding::kRandomized));

TEST(DnaTest, ReverseComplement) {
  EXPECT_EQ(reverse_complement("ACGT"), "ACGT");
  EXPECT_EQ(reverse_complement("AAAA"), "TTTT");
  EXPECT_EQ(reverse_complement("GATTACA"), "TGTAATC");
  EXPECT_EQ(reverse_complement(""), "");
}

TEST(DnaTest, ReverseComplementIsInvolution) {
  const std::string s = "ACGTTGCAACGTAGCTAGCTA";
  EXPECT_EQ(reverse_complement(reverse_complement(s)), s);
}

TEST(DnaTest, ReverseComplementRejectsJunk) {
  EXPECT_THROW(reverse_complement("ACNGT"), ParseError);
}

TEST(DnaTest, RecodeTranslatesBetweenEncodings) {
  for (char base : {'A', 'C', 'G', 'T'}) {
    const BaseCode std_code = encode_base(base, BaseEncoding::kStandard);
    const BaseCode rnd_code = encode_base(base, BaseEncoding::kRandomized);
    EXPECT_EQ(recode(std_code, BaseEncoding::kStandard,
                     BaseEncoding::kRandomized),
              rnd_code);
    EXPECT_EQ(recode(rnd_code, BaseEncoding::kRandomized,
                     BaseEncoding::kStandard),
              std_code);
  }
}

TEST(DnaTest, IsAcgt) {
  EXPECT_TRUE(is_acgt('A'));
  EXPECT_TRUE(is_acgt('t'));
  EXPECT_FALSE(is_acgt('N'));
  EXPECT_FALSE(is_acgt(' '));
  EXPECT_FALSE(is_acgt('\0'));
}

}  // namespace
}  // namespace dedukt::io
