#include "dedukt/io/disk_model.hpp"

#include <gtest/gtest.h>

namespace dedukt::io {
namespace {

TEST(DiskModelTest, ZeroWorkCostsNothing) {
  const DiskModel disk = DiskModel::summit_nvme();
  EXPECT_DOUBLE_EQ(disk.write_seconds(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(disk.read_seconds(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(disk.random_read_seconds(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(disk.write_volume_seconds(0), 0.0);
  EXPECT_DOUBLE_EQ(disk.read_volume_seconds(0), 0.0);
}

TEST(DiskModelTest, ChargesSplitIntoVolumeAndLatency) {
  const DiskModel disk = DiskModel::summit_nvme();
  const std::uint64_t bytes = 1'000'000'000;
  // The volume share is bytes / bandwidth; the op share is ops * latency.
  EXPECT_DOUBLE_EQ(disk.write_volume_seconds(bytes),
                   static_cast<double>(bytes) / disk.seq_write_bw);
  EXPECT_DOUBLE_EQ(disk.read_volume_seconds(bytes),
                   static_cast<double>(bytes) / disk.seq_read_bw);
  EXPECT_DOUBLE_EQ(disk.write_seconds(bytes, 10),
                   disk.write_volume_seconds(bytes) + 10 * disk.op_latency_s);
  EXPECT_DOUBLE_EQ(disk.read_seconds(bytes, 10),
                   disk.read_volume_seconds(bytes) + 10 * disk.op_latency_s);
}

TEST(DiskModelTest, MonotoneInBytesAndOps) {
  const DiskModel disk = DiskModel::summit_nvme();
  EXPECT_LT(disk.write_seconds(1 << 20, 1), disk.write_seconds(1 << 24, 1));
  EXPECT_LT(disk.write_seconds(1 << 20, 1), disk.write_seconds(1 << 20, 100));
  EXPECT_LT(disk.read_seconds(1 << 20, 1), disk.read_seconds(1 << 24, 1));
}

TEST(DiskModelTest, SummitCalibrationOrdering) {
  const DiskModel disk = DiskModel::summit_nvme();
  // PM1725a: reads outrun writes; random reads trail sequential reads.
  EXPECT_GT(disk.seq_read_bw, disk.seq_write_bw);
  EXPECT_GT(disk.seq_read_bw, disk.rand_read_bw);
  EXPECT_GT(disk.op_latency_s, 0.0);
  // Same bytes: the random-read charge can never beat sequential.
  EXPECT_GE(disk.random_read_seconds(1 << 24, 8),
            disk.read_seconds(1 << 24, 8));
}

TEST(DiskModelTest, LocalScratchIsNearlyFree) {
  const DiskModel local = DiskModel::local();
  const DiskModel summit = DiskModel::summit_nvme();
  const std::uint64_t bytes = 1 << 30;
  EXPECT_LT(local.write_seconds(bytes, 1000),
            summit.write_seconds(bytes, 1000) / 10.0);
  EXPECT_LT(local.read_seconds(bytes, 1000),
            summit.read_seconds(bytes, 1000) / 10.0);
}

}  // namespace
}  // namespace dedukt::io
