#include "dedukt/io/read_stream.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dedukt/io/fastq.hpp"
#include "dedukt/util/error.hpp"

namespace dedukt::io {
namespace {

ReadBatch sample_reads(std::size_t n) {
  ReadBatch batch;
  for (std::size_t i = 0; i < n; ++i) {
    Read read;
    read.id = "read" + std::to_string(i);
    read.bases = std::string(20 + i % 7, "ACGT"[i % 4]);
    read.quality = std::string(read.bases.size(), 'I');
    batch.reads.push_back(std::move(read));
  }
  return batch;
}

/// Drain a stream and return the concatenation of its batches.
ReadBatch drain(ReadBatchStream& stream, std::vector<std::size_t>* sizes) {
  ReadBatch all;
  while (auto batch = stream.next()) {
    EXPECT_FALSE(batch->reads.empty());
    if (sizes != nullptr) sizes->push_back(batch->reads.size());
    for (auto& read : batch->reads) all.reads.push_back(std::move(read));
  }
  return all;
}

void expect_same_reads(const ReadBatch& a, const ReadBatch& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.reads[i].id, b.reads[i].id);
    EXPECT_EQ(a.reads[i].bases, b.reads[i].bases);
    EXPECT_EQ(a.reads[i].quality, b.reads[i].quality);
  }
}

TEST(BatchBoundsTest, UnboundedNeverFull) {
  const BatchBounds bounds;
  EXPECT_TRUE(bounds.unbounded());
  EXPECT_FALSE(bounds.full(1'000'000, 1'000'000'000));
}

TEST(BatchBoundsTest, ReadAndByteLimitsClose) {
  BatchBounds bounds;
  bounds.max_reads = 10;
  EXPECT_FALSE(bounds.unbounded());
  EXPECT_FALSE(bounds.full(9, 0));
  EXPECT_TRUE(bounds.full(10, 0));
  bounds = BatchBounds{};
  bounds.max_bytes = 100;
  EXPECT_FALSE(bounds.full(50, 99));
  EXPECT_TRUE(bounds.full(0, 100));
}

TEST(ReadStreamTest, UnboundedVectorStreamYieldsWholeInputOnce) {
  const ReadBatch reads = sample_reads(13);
  VectorBatchStream stream(reads);
  const auto first = stream.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->size(), reads.size());
  EXPECT_FALSE(stream.next().has_value());
}

TEST(ReadStreamTest, ReadBoundSlicesWithoutLossOrReorder) {
  const ReadBatch reads = sample_reads(13);
  BatchBounds bounds;
  bounds.max_reads = 5;
  VectorBatchStream stream(reads, bounds);
  std::vector<std::size_t> sizes;
  const ReadBatch all = drain(stream, &sizes);
  expect_same_reads(all, reads);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{5, 5, 3}));
}

TEST(ReadStreamTest, SingleReadBatches) {
  const ReadBatch reads = sample_reads(7);
  BatchBounds bounds;
  bounds.max_reads = 1;
  VectorBatchStream stream(reads, bounds);
  std::vector<std::size_t> sizes;
  const ReadBatch all = drain(stream, &sizes);
  expect_same_reads(all, reads);
  EXPECT_EQ(sizes.size(), reads.size());
  for (const std::size_t size : sizes) EXPECT_EQ(size, 1u);
}

TEST(ReadStreamTest, ByteBoundAdmitsAtLeastOneRead) {
  const ReadBatch reads = sample_reads(6);
  BatchBounds bounds;
  bounds.max_bytes = 1;  // smaller than any record: one read per batch
  VectorBatchStream stream(reads, bounds);
  std::vector<std::size_t> sizes;
  const ReadBatch all = drain(stream, &sizes);
  expect_same_reads(all, reads);
  EXPECT_EQ(sizes.size(), reads.size());
}

TEST(ReadStreamTest, ByteBoundTracksFastqBytes) {
  const ReadBatch reads = sample_reads(10);
  std::uint64_t two_records = fastq_record_bytes(reads.reads[0]) +
                              fastq_record_bytes(reads.reads[1]);
  BatchBounds bounds;
  bounds.max_bytes = two_records;
  VectorBatchStream stream(reads, bounds);
  const auto first = stream.next();
  ASSERT_TRUE(first.has_value());
  // The batch closes once it *meets* the bound: exactly two records fit.
  EXPECT_EQ(first->size(), 2u);
}

TEST(ReadStreamTest, EmptyInputYieldsNoBatches) {
  const ReadBatch empty;
  VectorBatchStream stream(empty);
  EXPECT_FALSE(stream.next().has_value());
}

TEST(ReadStreamTest, FastqRecordBytesMatchesFileSize) {
  const ReadBatch reads = sample_reads(4);
  std::uint64_t total = 0;
  for (const Read& read : reads.reads) total += fastq_record_bytes(read);
  EXPECT_EQ(total, fastq_size_bytes(reads));
}

TEST(ReadStreamTest, ResidentReadBytesSumsPayload) {
  ReadBatch batch;
  batch.reads.push_back({"id", "ACGT", "IIII"});
  batch.reads.push_back({"x", "GG", ""});
  EXPECT_EQ(resident_read_bytes(batch), 2u + 4u + 4u + 1u + 2u + 0u);
  EXPECT_EQ(resident_read_bytes(ReadBatch{}), 0u);
}

class FastqStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "read_stream_test.fastq";
    write_fastq_file(path_, sample_reads(11));
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(FastqStreamTest, StreamedFileEqualsWholeFileRead) {
  const ReadBatch whole = read_fastq_file(path_);
  BatchBounds bounds;
  bounds.max_reads = 4;
  FastqBatchStream stream(path_, bounds);
  std::vector<std::size_t> sizes;
  const ReadBatch all = drain(stream, &sizes);
  expect_same_reads(all, whole);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{4, 4, 3}));
}

TEST_F(FastqStreamTest, UnboundedStreamYieldsOneBatch) {
  FastqBatchStream stream(path_);
  const auto first = stream.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->size(), 11u);
  EXPECT_FALSE(stream.next().has_value());
}

TEST_F(FastqStreamTest, ByteBoundedStreamCoversWholeFile) {
  const ReadBatch whole = read_fastq_file(path_);
  BatchBounds bounds;
  bounds.max_bytes = 64;
  FastqBatchStream stream(path_, bounds);
  const ReadBatch all = drain(stream, nullptr);
  expect_same_reads(all, whole);
}

TEST(FastqStreamErrorTest, MissingFileThrowsParseError) {
  EXPECT_THROW(FastqBatchStream("/nonexistent/stream.fastq"), ParseError);
}

TEST(FastqStreamErrorTest, MalformedRecordThrowsParseErrorMidStream) {
  const std::string path =
      ::testing::TempDir() + "read_stream_malformed.fastq";
  {
    std::ofstream out(path);
    out << "@ok\nACGT\n+\nIIII\n";
    out << "not-a-header\nACGT\n+\nIIII\n";
  }
  BatchBounds bounds;
  bounds.max_reads = 1;
  FastqBatchStream stream(path, bounds);
  const auto first = stream.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->reads[0].id, "ok");
  EXPECT_THROW(stream.next(), ParseError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dedukt::io
