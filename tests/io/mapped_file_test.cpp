// MappedFile tests: the zero-copy view is byte-identical to a stream read,
// and the shard readers behave identically — same parsed image, same
// ParseError surface — whether they go through the mapping or the stream
// fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dedukt/io/dna.hpp"
#include "dedukt/io/mapped_file.hpp"
#include "dedukt/store/shard.hpp"
#include "dedukt/util/error.hpp"

namespace dedukt::io {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::byte> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> bytes(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    bytes[i] = static_cast<std::byte>(raw[i]);
  }
  return bytes;
}

/// A small but nontrivial shard file to read back through both paths.
std::string write_test_shard(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  for (std::uint64_t i = 0; i < 257; ++i) {
    entries.emplace_back(i * 37 + 5, (i % 9) + 1);
  }
  const store::ShardFile shard =
      store::make_shard(entries, /*k=*/17, BaseEncoding::kRandomized);
  const std::string path = dir + "/shard.dksh";
  store::write_shard_file(path, shard);
  return path;
}

TEST(MappedFileTest, ViewMatchesStreamReadByteForByte) {
  ASSERT_TRUE(MappedFile::supported());  // POSIX CI; the gate is for ports
  const std::string dir = fresh_dir("mapped_file_bytes");
  const std::string path = write_test_shard(dir);
  const std::vector<std::byte> expected = slurp(path);
  ASSERT_FALSE(expected.empty());

  const MappedFile mapped = MappedFile::open(path);
  ASSERT_EQ(mapped.size(), expected.size());
  const std::span<const std::byte> view = mapped.bytes();
  EXPECT_TRUE(std::equal(view.begin(), view.end(), expected.begin()));
  EXPECT_EQ(mapped.path(), path);
}

TEST(MappedFileTest, MissingFileThrowsAndTryOpenReturnsNullopt) {
  const std::string path =
      fresh_dir("mapped_file_missing") + "/does_not_exist";
  EXPECT_THROW((void)MappedFile::open(path), ParseError);
  EXPECT_FALSE(MappedFile::try_open(path).has_value());
}

TEST(MappedFileTest, EmptyFileMapsToEmptyView) {
  const std::string path = fresh_dir("mapped_file_empty") + "/empty";
  std::ofstream(path).close();
  const MappedFile mapped = MappedFile::open(path);
  EXPECT_EQ(mapped.size(), 0u);
  EXPECT_TRUE(mapped.bytes().empty());
}

TEST(MappedFileTest, MoveTransfersTheMapping) {
  const std::string dir = fresh_dir("mapped_file_move");
  const std::string path = write_test_shard(dir);
  MappedFile a = MappedFile::open(path);
  const std::size_t size = a.size();
  ASSERT_GT(size, 0u);
  const MappedFile b = std::move(a);
  EXPECT_EQ(b.size(), size);
  EXPECT_EQ(a.size(), 0u);       // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(a.bytes().empty());
}

TEST(MappedFileTest, ShardReadersIdenticalAcrossMappedAndStreamPaths) {
  const std::string dir = fresh_dir("mapped_file_shard");
  const std::string path = write_test_shard(dir);

  const store::ShardFile mapped = store::read_shard_file(path);
  const store::ShardFile streamed = store::read_shard_file_stream(path);
  EXPECT_EQ(mapped.k, streamed.k);
  EXPECT_EQ(mapped.encoding, streamed.encoding);
  EXPECT_EQ(mapped.keys, streamed.keys);
  EXPECT_EQ(mapped.counts, streamed.counts);
  EXPECT_EQ(mapped.index, streamed.index);
  EXPECT_EQ(mapped.entries(), 257u);
}

TEST(MappedFileTest, TruncationRejectedOnBothReaderPaths) {
  const std::string dir = fresh_dir("mapped_file_truncated");
  const std::string full = write_test_shard(dir);
  const std::vector<std::byte> bytes = slurp(full);

  // Chop at several depths: inside the header, inside the index, inside
  // the key array, and one byte short of complete.
  for (const std::size_t keep :
       {std::size_t{3}, std::size_t{16}, std::size_t{40}, bytes.size() / 2,
        bytes.size() - 1}) {
    const std::string path = dir + "/trunc_" + std::to_string(keep);
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_THROW((void)store::read_shard_file(path), ParseError)
        << "keep=" << keep;
    EXPECT_THROW((void)store::read_shard_file_stream(path), ParseError)
        << "keep=" << keep;
  }
}

TEST(MappedFileTest, TrailingGarbageRejectedOnBothReaderPaths) {
  const std::string dir = fresh_dir("mapped_file_trailing");
  const std::string full = write_test_shard(dir);
  std::vector<std::byte> bytes = slurp(full);
  bytes.push_back(std::byte{0x5A});
  const std::string path = dir + "/trailing.dksh";
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_THROW((void)store::read_shard_file(path), ParseError);
  EXPECT_THROW((void)store::read_shard_file_stream(path), ParseError);
}

TEST(MappedFileTest, BadMagicRejectedOnBothReaderPaths) {
  const std::string dir = fresh_dir("mapped_file_magic");
  const std::string full = write_test_shard(dir);
  std::vector<std::byte> bytes = slurp(full);
  bytes[0] = std::byte{'X'};
  const std::string path = dir + "/magic.dksh";
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_THROW((void)store::read_shard_file(path), ParseError);
  EXPECT_THROW((void)store::read_shard_file_stream(path), ParseError);
}

}  // namespace
}  // namespace dedukt::io
