#include "dedukt/io/fastq.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dedukt/util/error.hpp"

namespace dedukt::io {
namespace {

TEST(FastqTest, ParsesSingleRecord) {
  std::istringstream in("@r1\nACGT\n+\nIIII\n");
  const ReadBatch batch = read_fastq(in);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.reads[0].id, "r1");
  EXPECT_EQ(batch.reads[0].bases, "ACGT");
  EXPECT_EQ(batch.reads[0].quality, "IIII");
}

TEST(FastqTest, ParsesMultipleRecords) {
  std::istringstream in("@a\nAC\n+\n!!\n@b\nGTT\n+anything\n##$\n");
  const ReadBatch batch = read_fastq(in);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.reads[1].bases, "GTT");
  EXPECT_EQ(batch.reads[1].quality, "##$");
}

TEST(FastqTest, UpperCasesBases) {
  std::istringstream in("@r\nacgt\n+\nIIII\n");
  EXPECT_EQ(read_fastq(in).reads[0].bases, "ACGT");
}

TEST(FastqTest, MissingAtSignThrows) {
  std::istringstream in("r1\nACGT\n+\nIIII\n");
  EXPECT_THROW(read_fastq(in), ParseError);
}

TEST(FastqTest, MissingPlusThrows) {
  std::istringstream in("@r1\nACGT\nIIII\nIIII\n");
  EXPECT_THROW(read_fastq(in), ParseError);
}

TEST(FastqTest, TruncatedRecordThrows) {
  std::istringstream in("@r1\nACGT\n+\n");
  EXPECT_THROW(read_fastq(in), ParseError);
}

TEST(FastqTest, QualityLengthMismatchThrows) {
  std::istringstream in("@r1\nACGT\n+\nIII\n");
  EXPECT_THROW(read_fastq(in), ParseError);
}

TEST(FastqTest, HandlesCrLf) {
  std::istringstream in("@r\r\nAC\r\n+\r\nII\r\n");
  const ReadBatch batch = read_fastq(in);
  EXPECT_EQ(batch.reads[0].bases, "AC");
  EXPECT_EQ(batch.reads[0].quality, "II");
}

TEST(FastqTest, RoundTripThroughWriter) {
  ReadBatch batch;
  batch.reads.push_back({"alpha", "ACGT", "!#%I"});
  std::ostringstream out;
  write_fastq(out, batch);
  std::istringstream in(out.str());
  const ReadBatch parsed = read_fastq(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.reads[0].bases, "ACGT");
  EXPECT_EQ(parsed.reads[0].quality, "!#%I");
}

TEST(FastqTest, WriterSynthesizesMissingQuality) {
  ReadBatch batch;
  batch.reads.push_back({"x", "ACG", ""});
  std::ostringstream out;
  write_fastq(out, batch);
  EXPECT_EQ(out.str(), "@x\nACG\n+\nIII\n");
}

TEST(FastqTest, SizeBytesMatchesWrittenOutput) {
  ReadBatch batch;
  batch.reads.push_back({"read_one", "ACGTACGT", "IIIIIIII"});
  batch.reads.push_back({"r2", "TT", "II"});
  std::ostringstream out;
  write_fastq(out, batch);
  EXPECT_EQ(fastq_size_bytes(batch), out.str().size());
}

TEST(FastqTest, EmptyInputGivesEmptyBatch) {
  std::istringstream in("");
  EXPECT_TRUE(read_fastq(in).empty());
}

TEST(FastqTest, MissingFileThrows) {
  EXPECT_THROW(read_fastq_file("/nonexistent/path.fq"), ParseError);
}

}  // namespace
}  // namespace dedukt::io
