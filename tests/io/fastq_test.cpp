#include "dedukt/io/fastq.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dedukt/util/error.hpp"

namespace dedukt::io {
namespace {

TEST(FastqTest, ParsesSingleRecord) {
  std::istringstream in("@r1\nACGT\n+\nIIII\n");
  const ReadBatch batch = read_fastq(in);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.reads[0].id, "r1");
  EXPECT_EQ(batch.reads[0].bases, "ACGT");
  EXPECT_EQ(batch.reads[0].quality, "IIII");
}

TEST(FastqTest, ParsesMultipleRecords) {
  std::istringstream in("@a\nAC\n+\n!!\n@b\nGTT\n+anything\n##$\n");
  const ReadBatch batch = read_fastq(in);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.reads[1].bases, "GTT");
  EXPECT_EQ(batch.reads[1].quality, "##$");
}

TEST(FastqTest, UpperCasesBases) {
  std::istringstream in("@r\nacgt\n+\nIIII\n");
  EXPECT_EQ(read_fastq(in).reads[0].bases, "ACGT");
}

TEST(FastqTest, MissingAtSignThrows) {
  std::istringstream in("r1\nACGT\n+\nIIII\n");
  EXPECT_THROW(read_fastq(in), ParseError);
}

TEST(FastqTest, MissingPlusThrows) {
  std::istringstream in("@r1\nACGT\nIIII\nIIII\n");
  EXPECT_THROW(read_fastq(in), ParseError);
}

TEST(FastqTest, TruncatedRecordThrows) {
  std::istringstream in("@r1\nACGT\n+\n");
  EXPECT_THROW(read_fastq(in), ParseError);
}

TEST(FastqTest, QualityLengthMismatchThrows) {
  std::istringstream in("@r1\nACGT\n+\nIII\n");
  EXPECT_THROW(read_fastq(in), ParseError);
}

TEST(FastqTest, HandlesCrLf) {
  std::istringstream in("@r\r\nAC\r\n+\r\nII\r\n");
  const ReadBatch batch = read_fastq(in);
  EXPECT_EQ(batch.reads[0].bases, "AC");
  EXPECT_EQ(batch.reads[0].quality, "II");
}

TEST(FastqTest, RoundTripThroughWriter) {
  ReadBatch batch;
  batch.reads.push_back({"alpha", "ACGT", "!#%I"});
  std::ostringstream out;
  write_fastq(out, batch);
  std::istringstream in(out.str());
  const ReadBatch parsed = read_fastq(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.reads[0].bases, "ACGT");
  EXPECT_EQ(parsed.reads[0].quality, "!#%I");
}

TEST(FastqTest, WriterSynthesizesMissingQuality) {
  ReadBatch batch;
  batch.reads.push_back({"x", "ACG", ""});
  std::ostringstream out;
  write_fastq(out, batch);
  EXPECT_EQ(out.str(), "@x\nACG\n+\nIII\n");
}

TEST(FastqTest, SizeBytesMatchesWrittenOutput) {
  ReadBatch batch;
  batch.reads.push_back({"read_one", "ACGTACGT", "IIIIIIII"});
  batch.reads.push_back({"r2", "TT", "II"});
  std::ostringstream out;
  write_fastq(out, batch);
  EXPECT_EQ(fastq_size_bytes(batch), out.str().size());
}

TEST(FastqTest, EmptyInputGivesEmptyBatch) {
  std::istringstream in("");
  EXPECT_TRUE(read_fastq(in).empty());
}

TEST(FastqTest, MissingFileThrows) {
  EXPECT_THROW(read_fastq_file("/nonexistent/path.fq"), ParseError);
}

// --- hostile-input sweeps ----------------------------------------------
// The ingest hardening contract: whatever bytes arrive, the parser either
// succeeds or raises typed ParseError. It must never surface a
// PreconditionError, a bad_alloc, or any other exception type — streamed
// ingest feeds arbitrary file prefixes straight into the hot path.

std::string well_formed_input() {
  std::string text;
  text += "@first read\nACGTACGTAC\n+\nIIIIIIIIII\n";
  text += "@second\nTTGGCCAA\n+second\n!!!!!!!!\n";
  text += "@third\nACGT\n+\nIIII\n";
  return text;
}

/// Parse `text`, asserting the only allowed outcomes. Returns true if the
/// parse succeeded.
bool parse_is_clean(const std::string& text) {
  std::istringstream in(text);
  try {
    (void)read_fastq(in);
    return true;
  } catch (const ParseError&) {
    return false;  // allowed
  } catch (const std::exception& e) {
    ADD_FAILURE() << "non-ParseError exception: " << e.what()
                  << " for input:\n"
                  << text;
    return false;
  }
}

TEST(FastqFuzzTest, EveryTruncationPrefixSucceedsOrThrowsParseError) {
  const std::string text = well_formed_input();
  for (std::size_t cut = 0; cut <= text.size(); ++cut) {
    (void)parse_is_clean(text.substr(0, cut));
  }
}

TEST(FastqFuzzTest, EveryByteFlipSucceedsOrThrowsParseError) {
  const std::string text = well_formed_input();
  // Flip each position to a handful of hostile values: NUL, '@'-injection,
  // newline-injection, high-bit garbage.
  for (const char garbage : {'\0', '@', '\n', '+', '\x7f'}) {
    for (std::size_t pos = 0; pos < text.size(); ++pos) {
      std::string mutated = text;
      mutated[pos] = garbage;
      (void)parse_is_clean(mutated);
    }
  }
}

TEST(FastqFuzzTest, GarbageInputThrowsParseErrorNotWorse) {
  EXPECT_FALSE(parse_is_clean("\x01\x02\x03 garbage"));
  EXPECT_FALSE(parse_is_clean("@\n"));
  EXPECT_FALSE(parse_is_clean("@only header"));
  // A '+' line alone (no header) is not a record start.
  EXPECT_FALSE(parse_is_clean("+\nIIII\n"));
}

TEST(FastqFuzzTest, StreamedReaderMatchesWholeFileOnTruncations) {
  // The chunked FastqBatchStream shares FastqRecordReader with
  // read_fastq: both sides of every truncation must agree on whether the
  // prefix parses and on the records it yields.
  const std::string text = well_formed_input();
  for (std::size_t cut = 0; cut <= text.size(); ++cut) {
    const std::string prefix = text.substr(0, cut);
    std::istringstream whole_in(prefix);
    bool whole_ok = true;
    ReadBatch whole;
    try {
      whole = read_fastq(whole_in);
    } catch (const ParseError&) {
      whole_ok = false;
    }

    std::istringstream chunk_in(prefix);
    FastqRecordReader reader(chunk_in);
    bool chunked_ok = true;
    ReadBatch chunked;
    try {
      Read read;
      while (reader.next(read)) {
        chunked.reads.push_back(std::move(read));
        read = Read{};
      }
    } catch (const ParseError&) {
      chunked_ok = false;
    }

    EXPECT_EQ(whole_ok, chunked_ok) << "prefix length " << cut;
    if (whole_ok && chunked_ok) {
      ASSERT_EQ(whole.size(), chunked.size()) << "prefix length " << cut;
      for (std::size_t i = 0; i < whole.size(); ++i) {
        EXPECT_EQ(whole.reads[i].bases, chunked.reads[i].bases);
      }
    }
  }
}

}  // namespace
}  // namespace dedukt::io
