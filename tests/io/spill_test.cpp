#include "dedukt/io/spill.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "dedukt/util/error.hpp"

namespace dedukt::io {
namespace {

namespace fs = std::filesystem;

std::string test_root() { return ::testing::TempDir() + "dedukt-spill-test"; }

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- SpillKind ----------------------------------------------------------

TEST(SpillKindTest, ToStringCoversEveryKind) {
  EXPECT_EQ(to_string(SpillKind::kKmerKeys), "kmer-keys");
  EXPECT_EQ(to_string(SpillKind::kWideKmerKeys), "wide-kmer-keys");
  EXPECT_EQ(to_string(SpillKind::kSupermers), "supermers");
  EXPECT_EQ(to_string(SpillKind::kWideSupermers), "wide-supermers");
}

TEST(SpillKindTest, LayoutHelpers) {
  EXPECT_EQ(spill_words_per_item(SpillKind::kKmerKeys), 1u);
  EXPECT_EQ(spill_words_per_item(SpillKind::kWideKmerKeys), 2u);
  EXPECT_EQ(spill_words_per_item(SpillKind::kSupermers), 1u);
  EXPECT_EQ(spill_words_per_item(SpillKind::kWideSupermers), 2u);
  EXPECT_FALSE(spill_has_lens(SpillKind::kKmerKeys));
  EXPECT_FALSE(spill_has_lens(SpillKind::kWideKmerKeys));
  EXPECT_TRUE(spill_has_lens(SpillKind::kSupermers));
  EXPECT_TRUE(spill_has_lens(SpillKind::kWideSupermers));
}

// --- SpillDir -----------------------------------------------------------

TEST(SpillDirTest, CreatesUniqueSubdirsAndRemovesThem) {
  const std::string root = test_root();
  std::string a_path, b_path;
  {
    SpillDir a(root);
    SpillDir b(root);
    a_path = a.path();
    b_path = b.path();
    EXPECT_NE(a_path, b_path);
    EXPECT_TRUE(fs::is_directory(a_path));
    EXPECT_TRUE(fs::is_directory(b_path));
    // Scratch paths live under the requested root.
    EXPECT_EQ(fs::path(a_path).parent_path(), fs::path(root));
  }
  EXPECT_FALSE(fs::exists(a_path));
  EXPECT_FALSE(fs::exists(b_path));
  fs::remove_all(root);
}

TEST(SpillDirTest, RemovesContentsOnException) {
  const std::string root = test_root();
  std::string path;
  try {
    SpillDir dir(root);
    path = dir.path();
    dump(dir.bin_path(0, 0), "leftover bytes");
    throw Error("simulated mid-run failure");
  } catch (const Error&) {
  }
  EXPECT_FALSE(fs::exists(path));
  fs::remove_all(root);
}

TEST(SpillDirTest, KeepLeavesDirectoryOnDisk) {
  const std::string root = test_root();
  std::string path;
  {
    SpillDir dir(root);
    dir.keep();
    path = dir.path();
  }
  EXPECT_TRUE(fs::is_directory(path));
  fs::remove_all(root);
}

TEST(SpillDirTest, BinPathIsPerRankPerBin) {
  const std::string root = test_root();
  SpillDir dir(root);
  EXPECT_NE(dir.bin_path(0, 0), dir.bin_path(0, 1));
  EXPECT_NE(dir.bin_path(0, 0), dir.bin_path(1, 0));
  EXPECT_EQ(fs::path(dir.bin_path(2, 3)).parent_path(), fs::path(dir.path()));
}

// --- writer/reader round trips -----------------------------------------

struct RoundTripCase {
  SpillKind kind;
  int k;
};

class SpillRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(SpillRoundTrip, RunsSurviveRoundTrip) {
  const auto [kind, k] = GetParam();
  const std::string root = test_root();
  SpillDir dir(root);
  const std::string path = dir.bin_path(0, 0);
  const std::uint32_t nranks = 4;
  const std::uint32_t wpi = spill_words_per_item(kind);
  const bool has_lens = spill_has_lens(kind);

  std::vector<std::vector<std::uint64_t>> words = {
      {0x1111, 0x2222, 0x3333},                  // dest 0: 3 or 1.5 items
      {0xAAAA'BBBB'CCCC'DDDD, 0x0123'4567'89AB}, // dest 2
  };
  if (wpi == 2) {
    words[0].push_back(0x4444);  // make item counts whole
  }
  std::vector<std::vector<std::uint8_t>> lens = {{21, 22, 23, 24},
                                                 {31, 32}};

  std::uint64_t expected_bytes = 0;
  {
    SpillBinWriter writer(path, kind, k, nranks);
    writer.append_run(0, words[0].data(), words[0].size() / wpi,
                      has_lens ? lens[0].data() : nullptr);
    writer.append_run(2, words[1].data(), words[1].size() / wpi,
                      has_lens ? lens[1].data() : nullptr);
    writer.close();
    EXPECT_EQ(writer.runs(), 2u);
    expected_bytes = writer.bytes_written();
    EXPECT_GT(expected_bytes, 0u);
  }

  SpillBinReader reader(path, kind, k, nranks);
  SpillRun run;
  ASSERT_TRUE(reader.next(run));
  EXPECT_EQ(run.dest, 0u);
  EXPECT_EQ(run.count, words[0].size() / wpi);
  EXPECT_EQ(run.words, words[0]);
  if (has_lens) {
    EXPECT_EQ(run.lens, std::vector<std::uint8_t>(
                            lens[0].begin(),
                            lens[0].begin() + static_cast<long>(run.count)));
  } else {
    EXPECT_TRUE(run.lens.empty());
  }
  ASSERT_TRUE(reader.next(run));
  EXPECT_EQ(run.dest, 2u);
  EXPECT_EQ(run.words, words[1]);
  EXPECT_FALSE(reader.next(run));
  EXPECT_EQ(reader.runs(), 2u);
  EXPECT_EQ(reader.bytes_read(), expected_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SpillRoundTrip,
    ::testing::Values(RoundTripCase{SpillKind::kKmerKeys, 17},
                      RoundTripCase{SpillKind::kWideKmerKeys, 33},
                      RoundTripCase{SpillKind::kSupermers, 17},
                      RoundTripCase{SpillKind::kWideSupermers, 19}));

TEST(SpillFormatTest, EmptyFileYieldsNoRuns) {
  SpillDir dir(test_root());
  const std::string path = dir.bin_path(0, 0);
  {
    SpillBinWriter writer(path, SpillKind::kKmerKeys, 17, 4);
    writer.close();
  }
  SpillBinReader reader(path, SpillKind::kKmerKeys, 17, 4);
  SpillRun run;
  EXPECT_FALSE(reader.next(run));
}

// --- hostile-input validation ------------------------------------------

class SpillValidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<SpillDir>(test_root());
    path_ = dir_->bin_path(0, 0);
    SpillBinWriter writer(path_, SpillKind::kSupermers, 17, 4);
    const std::uint64_t words[] = {0x1234, 0x5678};
    const std::uint8_t lens[] = {20, 24};
    writer.append_run(1, words, 2, lens);
    writer.close();
  }
  std::unique_ptr<SpillDir> dir_;
  std::string path_;
};

TEST_F(SpillValidationTest, HeaderMismatchesThrowParseError) {
  SpillRun run;
  // Wrong kind / k / rank count.
  EXPECT_THROW(SpillBinReader(path_, SpillKind::kKmerKeys, 17, 4),
               ParseError);
  EXPECT_THROW(SpillBinReader(path_, SpillKind::kSupermers, 19, 4),
               ParseError);
  EXPECT_THROW(SpillBinReader(path_, SpillKind::kSupermers, 17, 8),
               ParseError);
  // Corrupt magic and version words.
  std::string bytes = slurp(path_);
  std::string bad = bytes;
  bad[0] = 'X';
  dump(path_, bad);
  EXPECT_THROW(SpillBinReader(path_, SpillKind::kSupermers, 17, 4),
               ParseError);
  bad = bytes;
  bad[4] = '\x7f';
  dump(path_, bad);
  EXPECT_THROW(SpillBinReader(path_, SpillKind::kSupermers, 17, 4),
               ParseError);
}

TEST_F(SpillValidationTest, MissingFileThrowsParseError) {
  EXPECT_THROW(
      SpillBinReader("/nonexistent/bin.dksp", SpillKind::kKmerKeys, 17, 4),
      ParseError);
}

TEST_F(SpillValidationTest, OutOfRangeDestinationThrowsParseError) {
  std::string bytes = slurp(path_);
  // The run header follows the 20-byte file header; its first u32 is dest.
  const std::uint32_t bad_dest = 4;  // == nranks, one past the last rank
  std::memcpy(bytes.data() + 20, &bad_dest, sizeof(bad_dest));
  dump(path_, bytes);
  SpillBinReader reader(path_, SpillKind::kSupermers, 17, 4);
  SpillRun run;
  EXPECT_THROW(reader.next(run), ParseError);
}

TEST_F(SpillValidationTest, OversizedCountThrowsBeforeAllocating) {
  std::string bytes = slurp(path_);
  // A count in the exabyte range: reading must fail on the
  // payload-vs-file-size check, not attempt the allocation.
  const std::uint64_t huge = std::uint64_t{1} << 55;
  std::memcpy(bytes.data() + 24, &huge, sizeof(huge));
  dump(path_, bytes);
  SpillBinReader reader(path_, SpillKind::kSupermers, 17, 4);
  SpillRun run;
  EXPECT_THROW(reader.next(run), ParseError);
}

TEST_F(SpillValidationTest, EveryTruncationThrowsParseErrorOrEndsCleanly) {
  const std::string bytes = slurp(path_);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    dump(path_, bytes.substr(0, cut));
    try {
      SpillBinReader reader(path_, SpillKind::kSupermers, 17, 4);
      SpillRun run;
      while (reader.next(run)) {
      }
      // A clean parse of a strict prefix is only possible right after the
      // header, where the file simply holds zero runs.
      EXPECT_EQ(cut, 20u) << "unexpected clean parse at cut " << cut;
    } catch (const ParseError&) {
      // expected for every other prefix
    } catch (const std::exception& e) {
      ADD_FAILURE() << "non-ParseError exception at cut " << cut << ": "
                    << e.what();
    }
  }
}

}  // namespace
}  // namespace dedukt::io
