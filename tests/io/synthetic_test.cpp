#include "dedukt/io/synthetic.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dedukt/io/dna.hpp"
#include "dedukt/util/error.hpp"

namespace dedukt::io {
namespace {

TEST(GenomeTest, HasRequestedLength) {
  GenomeSpec spec;
  spec.length = 10'000;
  const ReadBatch genome = generate_genome(spec);
  EXPECT_EQ(genome.total_bases(), 10'000u);
}

TEST(GenomeTest, RepliconsSplitTheLength) {
  GenomeSpec spec;
  spec.length = 10'000;
  spec.replicons = 3;
  const ReadBatch genome = generate_genome(spec);
  ASSERT_EQ(genome.size(), 3u);
  EXPECT_EQ(genome.total_bases(), 10'000u);
}

TEST(GenomeTest, DeterministicForSeed) {
  GenomeSpec spec;
  spec.length = 5'000;
  spec.seed = 99;
  const ReadBatch a = generate_genome(spec);
  const ReadBatch b = generate_genome(spec);
  EXPECT_EQ(a.reads[0].bases, b.reads[0].bases);
}

TEST(GenomeTest, DifferentSeedsDiffer) {
  GenomeSpec a_spec, b_spec;
  a_spec.length = b_spec.length = 5'000;
  a_spec.seed = 1;
  b_spec.seed = 2;
  EXPECT_NE(generate_genome(a_spec).reads[0].bases,
            generate_genome(b_spec).reads[0].bases);
}

TEST(GenomeTest, GcContentIsRespected) {
  GenomeSpec spec;
  spec.length = 200'000;
  spec.gc_content = 0.66;  // P. aeruginosa-like
  const ReadBatch genome = generate_genome(spec);
  std::size_t gc = 0;
  for (char c : genome.reads[0].bases) {
    if (c == 'G' || c == 'C') ++gc;
  }
  EXPECT_NEAR(static_cast<double>(gc) / 200'000.0, 0.66, 0.01);
}

TEST(GenomeTest, OnlyAcgtBases) {
  GenomeSpec spec;
  spec.length = 20'000;
  spec.repeat_fraction = 0.05;
  for (const auto& read : generate_genome(spec).reads) {
    for (char c : read.bases) {
      ASSERT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
    }
  }
}

TEST(GenomeTest, RepeatFractionControlsDuplicatedShare) {
  // With repeat fraction f, roughly a share f of the genome is copied
  // content, so the distinct 21-mer count drops to about (1-f) * length.
  GenomeSpec base;
  base.length = 300'000;
  base.seed = 31;
  base.repeat_unit = 1000;
  auto distinct_ratio = [&](double fraction) {
    GenomeSpec spec = base;
    spec.repeat_fraction = fraction;
    const ReadBatch genome = generate_genome(spec);
    std::set<std::uint64_t> distinct;
    std::uint64_t code = 0;
    const std::uint64_t mask = (1ull << 42) - 1;  // 21 bases
    const std::string& bases = genome.reads[0].bases;
    for (std::size_t i = 0; i < bases.size(); ++i) {
      code = ((code << 2) |
              static_cast<std::uint64_t>(
                  encode_base(bases[i], BaseEncoding::kStandard))) &
             mask;
      if (i >= 20) distinct.insert(code);
    }
    return static_cast<double>(distinct.size()) /
           static_cast<double>(bases.size());
  };
  EXPECT_GT(distinct_ratio(0.0), 0.99);
  EXPECT_NEAR(distinct_ratio(0.3), 0.7, 0.06);
}

TEST(GenomeTest, RejectsBadSpecs) {
  GenomeSpec spec;
  spec.length = 0;
  EXPECT_THROW(generate_genome(spec), PreconditionError);
  spec.length = 100;
  spec.gc_content = 1.5;
  EXPECT_THROW(generate_genome(spec), PreconditionError);
}

class ReadSamplerTest : public ::testing::Test {
 protected:
  ReadBatch make_genome(std::uint64_t length = 100'000) {
    GenomeSpec spec;
    spec.length = length;
    spec.seed = 5;
    return generate_genome(spec);
  }
};

TEST_F(ReadSamplerTest, ReachesRequestedCoverage) {
  const ReadBatch genome = make_genome();
  ReadSpec spec;
  spec.coverage = 12.0;
  spec.mean_read_length = 2'000;
  spec.min_read_length = 200;
  const ReadBatch reads = sample_reads(genome, spec);
  const double coverage =
      static_cast<double>(reads.total_bases()) / 100'000.0;
  EXPECT_GE(coverage, 12.0);
  EXPECT_LT(coverage, 12.5);  // overshoot bounded by one read
}

TEST_F(ReadSamplerTest, ReadsAreSubstringsOfGenomeOrItsReverseComplement) {
  const ReadBatch genome = make_genome(20'000);
  ReadSpec spec;
  spec.coverage = 2.0;
  spec.mean_read_length = 500;
  spec.min_read_length = 100;
  spec.error_rate = 0.0;
  const ReadBatch reads = sample_reads(genome, spec);
  const std::string& ref = genome.reads[0].bases;
  for (const auto& read : reads.reads) {
    const bool fwd = ref.find(read.bases) != std::string::npos;
    const bool rev =
        ref.find(reverse_complement(read.bases)) != std::string::npos;
    ASSERT_TRUE(fwd || rev) << "read " << read.id << " not found in genome";
  }
}

TEST_F(ReadSamplerTest, ForwardOnlyWhenStrandSamplingDisabled) {
  const ReadBatch genome = make_genome(20'000);
  ReadSpec spec;
  spec.coverage = 1.0;
  spec.mean_read_length = 400;
  spec.min_read_length = 100;
  spec.sample_both_strands = false;
  const ReadBatch reads = sample_reads(genome, spec);
  const std::string& ref = genome.reads[0].bases;
  for (const auto& read : reads.reads) {
    ASSERT_NE(ref.find(read.bases), std::string::npos);
  }
}

TEST_F(ReadSamplerTest, RespectsMinReadLength) {
  const ReadBatch genome = make_genome();
  ReadSpec spec;
  spec.coverage = 3.0;
  spec.mean_read_length = 800;
  spec.min_read_length = 700;
  for (const auto& read : sample_reads(genome, spec).reads) {
    EXPECT_GE(read.bases.size(), 700u);
  }
}

TEST_F(ReadSamplerTest, ErrorRatePerturbsBases) {
  const ReadBatch genome = make_genome(20'000);
  ReadSpec clean, noisy;
  clean.coverage = noisy.coverage = 1.0;
  clean.mean_read_length = noisy.mean_read_length = 1'000;
  clean.min_read_length = noisy.min_read_length = 500;
  clean.sample_both_strands = noisy.sample_both_strands = false;
  clean.seed = noisy.seed = 17;
  noisy.error_rate = 0.1;
  const ReadBatch a = sample_reads(genome, clean);
  const ReadBatch b = sample_reads(genome, noisy);
  ASSERT_EQ(a.size(), b.size());
  std::uint64_t diffs = 0, bases = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.reads[i].bases.size(), b.reads[i].bases.size());
    for (std::size_t j = 0; j < a.reads[i].bases.size(); ++j) {
      if (a.reads[i].bases[j] != b.reads[i].bases[j]) ++diffs;
    }
    bases += a.reads[i].bases.size();
  }
  const double rate = static_cast<double>(diffs) / static_cast<double>(bases);
  EXPECT_NEAR(rate, 0.1, 0.02);
}

TEST_F(ReadSamplerTest, Deterministic) {
  const ReadBatch genome = make_genome(30'000);
  ReadSpec spec;
  spec.coverage = 2.0;
  spec.mean_read_length = 600;
  spec.min_read_length = 100;
  const ReadBatch a = sample_reads(genome, spec);
  const ReadBatch b = sample_reads(genome, spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.reads[i].bases, b.reads[i].bases);
  }
}

TEST_F(ReadSamplerTest, QualityStringsMatchLengths) {
  const ReadBatch genome = make_genome(10'000);
  ReadSpec spec;
  spec.coverage = 1.0;
  spec.mean_read_length = 300;
  spec.min_read_length = 100;
  for (const auto& read : sample_reads(genome, spec).reads) {
    EXPECT_EQ(read.quality.size(), read.bases.size());
  }
}

TEST(ReadBatchTest, TotalKmersCountsPerRead) {
  ReadBatch batch;
  batch.reads.push_back({"a", "ACGTACGT", ""});  // 8 bases
  batch.reads.push_back({"b", "AC", ""});        // too short for k=3
  EXPECT_EQ(batch.total_kmers(3), 6u);
  EXPECT_EQ(batch.total_bases(), 10u);
}

}  // namespace
}  // namespace dedukt::io
