// Topology + hierarchical-exchange battery (ctest -L exchange): Comm's
// node layout queries, hierarchical_alltoallv payload parity with the flat
// exchange, the intra/inter byte-ledger split, the two-hop pricing, and
// the blocking/nonblocking agreement of the hierarchical charge.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dedukt/mpisim/comm.hpp"
#include "dedukt/mpisim/runtime.hpp"

namespace dedukt::mpisim {
namespace {

NetworkModel summit_like(int ranks_per_node) {
  NetworkModel m;
  m.latency_s = 5e-6;
  m.node_injection_bw = 23e9;
  m.ranks_per_node = ranks_per_node;
  m.efficiency = 0.045;
  m.intra_node_bw = 25e9;
  return m;
}

/// Deterministic skewed payload: rank r sends (r + dst) % 4 + 1 copies of
/// a rank/dst-tagged value to every other rank.
std::vector<std::vector<std::uint64_t>> make_send(int rank, int nranks) {
  std::vector<std::vector<std::uint64_t>> send(
      static_cast<std::size_t>(nranks));
  for (int dst = 0; dst < nranks; ++dst) {
    if (dst == rank) continue;
    send[static_cast<std::size_t>(dst)].assign(
        static_cast<std::size_t>((rank + dst) % 4 + 1),
        static_cast<std::uint64_t>(rank) * 1000 +
            static_cast<std::uint64_t>(dst));
  }
  return send;
}

TEST(TopologyTest, NodeLayoutQueries) {
  Runtime runtime(8, summit_like(3));
  runtime.run([&](Comm& comm) {
    EXPECT_EQ(comm.ranks_per_node(), 3);
    EXPECT_EQ(comm.nodes(), 3);  // 3 + 3 + 2: the last node is partial
    EXPECT_EQ(comm.node_of(0), 0);
    EXPECT_EQ(comm.node_of(2), 0);
    EXPECT_EQ(comm.node_of(3), 1);
    EXPECT_EQ(comm.node_of(7), 2);
    EXPECT_EQ(comm.node_leader(0), 0);
    EXPECT_EQ(comm.node_leader(2), 6);
    EXPECT_EQ(comm.is_node_leader(),
              comm.rank() == 0 || comm.rank() == 3 || comm.rank() == 6);
    EXPECT_EQ(comm.node_ranks(0), (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(comm.node_ranks(2), (std::vector<int>{6, 7}));
  });
}

TEST(TopologyTest, RanksPerNodeClampedToCommSize) {
  // A 4-rank world under the 6-per-node Summit model is one node.
  Runtime runtime(4, summit_like(6));
  runtime.run([&](Comm& comm) {
    EXPECT_EQ(comm.ranks_per_node(), 4);
    EXPECT_EQ(comm.nodes(), 1);
    EXPECT_TRUE(comm.is_node_leader() == (comm.rank() == 0));
  });
}

TEST(TopologyTest, NetworkModelNodesFor) {
  const NetworkModel m = summit_like(6);
  EXPECT_EQ(m.nodes_for(1), 1);
  EXPECT_EQ(m.nodes_for(6), 1);
  EXPECT_EQ(m.nodes_for(7), 2);
  EXPECT_EQ(m.nodes_for(12), 2);
  EXPECT_EQ(m.nodes_for(96), 16);
}

TEST(TopologyTest, HierarchicalDeliversIdenticalPayloads) {
  constexpr int kRanks = 9;  // 3 nodes of 3
  Runtime flat(kRanks, summit_like(3));
  Runtime hier(kRanks, summit_like(3));
  std::vector<AlltoallvResult<std::uint64_t>> flat_results(kRanks);
  std::vector<AlltoallvResult<std::uint64_t>> hier_results(kRanks);
  flat.run([&](Comm& comm) {
    flat_results[static_cast<std::size_t>(comm.rank())] =
        comm.alltoallv(make_send(comm.rank(), kRanks));
  });
  hier.run([&](Comm& comm) {
    hier_results[static_cast<std::size_t>(comm.rank())] =
        comm.hierarchical_alltoallv(make_send(comm.rank(), kRanks));
  });
  for (int r = 0; r < kRanks; ++r) {
    const auto& a = flat_results[static_cast<std::size_t>(r)];
    const auto& b = hier_results[static_cast<std::size_t>(r)];
    EXPECT_EQ(a.data, b.data) << "rank " << r;
    EXPECT_EQ(a.counts, b.counts) << "rank " << r;
    EXPECT_EQ(a.offsets, b.offsets) << "rank " << r;
  }
}

TEST(TopologyTest, ByteSplitSumsToFlatTotal) {
  constexpr int kRanks = 8;  // 3 + 3 + 2
  Runtime flat(kRanks, summit_like(3));
  Runtime hier(kRanks, summit_like(3));
  flat.run([&](Comm& comm) {
    (void)comm.alltoallv(make_send(comm.rank(), kRanks));
  });
  hier.run([&](Comm& comm) {
    (void)comm.hierarchical_alltoallv(make_send(comm.rank(), kRanks));
  });
  for (int r = 0; r < kRanks; ++r) {
    const CommStats& f = flat.stats()[static_cast<std::size_t>(r)];
    const CommStats& h = hier.stats()[static_cast<std::size_t>(r)];
    // The split is a classification of the same payload bytes.
    EXPECT_EQ(h.bytes_sent, f.bytes_sent) << "rank " << r;
    EXPECT_EQ(h.bytes_received, f.bytes_received) << "rank " << r;
    EXPECT_EQ(h.intra_node_bytes + h.inter_node_bytes, f.bytes_sent)
        << "rank " << r;
    // Flat never touches the split ledger.
    EXPECT_EQ(f.intra_node_bytes, 0u) << "rank " << r;
    EXPECT_EQ(f.inter_node_bytes, 0u) << "rank " << r;
  }
}

TEST(TopologyTest, ByteSplitClassifiesByDestinationNode) {
  constexpr int kRanks = 4;  // 2 nodes of 2
  Runtime hier(kRanks, summit_like(2));
  hier.run([&](Comm& comm) {
    // One 8-byte word to every other rank: 1 same-node peer, 2 off-node.
    std::vector<std::vector<std::uint64_t>> send(kRanks);
    for (int dst = 0; dst < kRanks; ++dst) {
      if (dst != comm.rank()) send[static_cast<std::size_t>(dst)] = {7};
    }
    (void)comm.hierarchical_alltoallv(send);
  });
  for (int r = 0; r < kRanks; ++r) {
    const CommStats& s = hier.stats()[static_cast<std::size_t>(r)];
    EXPECT_EQ(s.intra_node_bytes, 8u) << "rank " << r;
    EXPECT_EQ(s.inter_node_bytes, 16u) << "rank " << r;
  }
}

TEST(TopologyTest, HierarchicalModeledTimeStrictlyLowerMultiNode) {
  // Two Summit shapes from the paper's sweeps: 2 and 16 nodes of 6 GPUs.
  for (const int kRanks : {12, 96}) {
    Runtime flat(kRanks, summit_like(6));
    Runtime hier(kRanks, summit_like(6));
    flat.run([&](Comm& comm) {
      (void)comm.alltoallv(make_send(comm.rank(), kRanks));
    });
    hier.run([&](Comm& comm) {
      (void)comm.hierarchical_alltoallv(make_send(comm.rank(), kRanks));
    });
    EXPECT_LT(hier.total_stats().modeled_seconds,
              flat.total_stats().modeled_seconds)
        << kRanks << " ranks";
    // The intra-node share is part of, not on top of, the total.
    const CommStats& h = hier.stats()[0];
    EXPECT_GT(h.modeled_intra_seconds, 0.0);
    EXPECT_LT(h.modeled_intra_seconds, h.modeled_seconds);
  }
}

TEST(TopologyTest, SingleNodeDelegatesToFlatCharge) {
  constexpr int kRanks = 4;  // one node at 6 ranks/node
  Runtime flat(kRanks, summit_like(6));
  Runtime hier(kRanks, summit_like(6));
  std::vector<AlltoallvResult<std::uint64_t>> flat_results(kRanks);
  std::vector<AlltoallvResult<std::uint64_t>> hier_results(kRanks);
  flat.run([&](Comm& comm) {
    flat_results[static_cast<std::size_t>(comm.rank())] =
        comm.alltoallv(make_send(comm.rank(), kRanks));
  });
  hier.run([&](Comm& comm) {
    hier_results[static_cast<std::size_t>(comm.rank())] =
        comm.hierarchical_alltoallv(make_send(comm.rank(), kRanks));
  });
  for (int r = 0; r < kRanks; ++r) {
    const CommStats& f = flat.stats()[static_cast<std::size_t>(r)];
    const CommStats& h = hier.stats()[static_cast<std::size_t>(r)];
    EXPECT_EQ(flat_results[static_cast<std::size_t>(r)].data,
              hier_results[static_cast<std::size_t>(r)].data);
    // Bit-identical modeled charge — the hierarchical path IS the flat
    // path on one node; the only extra ledger is the intra classification.
    EXPECT_EQ(h.modeled_seconds, f.modeled_seconds) << "rank " << r;
    EXPECT_EQ(h.modeled_volume_seconds, f.modeled_volume_seconds);
    EXPECT_EQ(h.bytes_sent, f.bytes_sent);
    EXPECT_EQ(h.intra_node_bytes, f.bytes_sent);
    EXPECT_EQ(h.inter_node_bytes, 0u);
    EXPECT_EQ(h.modeled_intra_seconds, 0.0);
  }
}

TEST(TopologyTest, NonblockingHierarchicalMatchesBlocking) {
  constexpr int kRanks = 6;  // 2 nodes of 3
  Runtime blocking(kRanks, summit_like(3));
  Runtime nonblocking(kRanks, summit_like(3));
  std::vector<AlltoallvResult<std::uint64_t>> block_results(kRanks);
  std::vector<AlltoallvResult<std::uint64_t>> async_results(kRanks);
  blocking.run([&](Comm& comm) {
    block_results[static_cast<std::size_t>(comm.rank())] =
        comm.hierarchical_alltoallv(make_send(comm.rank(), kRanks));
  });
  nonblocking.run([&](Comm& comm) {
    auto request =
        comm.ialltoallv(make_send(comm.rank(), kRanks), /*hierarchical=*/true);
    async_results[static_cast<std::size_t>(comm.rank())] = request.wait();
  });
  for (int r = 0; r < kRanks; ++r) {
    const CommStats& b = blocking.stats()[static_cast<std::size_t>(r)];
    const CommStats& n = nonblocking.stats()[static_cast<std::size_t>(r)];
    EXPECT_EQ(block_results[static_cast<std::size_t>(r)].data,
              async_results[static_cast<std::size_t>(r)].data);
    EXPECT_EQ(n.modeled_seconds, b.modeled_seconds) << "rank " << r;
    EXPECT_EQ(n.modeled_intra_seconds, b.modeled_intra_seconds);
    EXPECT_EQ(n.intra_node_bytes, b.intra_node_bytes);
    EXPECT_EQ(n.inter_node_bytes, b.inter_node_bytes);
  }
}

TEST(TopologyTest, MismatchedFlatAndHierarchicalPostsAbort) {
  Runtime runtime(2, summit_like(1));
  EXPECT_THROW(
      runtime.run([&](Comm& comm) {
        auto request = comm.ialltoallv(make_send(comm.rank(), 2),
                                       /*hierarchical=*/comm.rank() == 0);
        (void)request.wait();
      }),
      SimulationError);
}

}  // namespace
}  // namespace dedukt::mpisim
