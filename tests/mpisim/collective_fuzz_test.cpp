// Randomized collective sequences: every rank executes the same randomly
// generated program of collectives; each operation is self-verifying
// against a sequentially computed oracle. Catches ordering, reuse, and
// synchronization bugs that single-collective tests cannot.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "dedukt/mpisim/runtime.hpp"
#include "dedukt/util/rng.hpp"

namespace dedukt::mpisim {
namespace {

class CollectiveFuzz
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(CollectiveFuzz, RandomProgramSelfVerifies) {
  const auto [nranks, seed] = GetParam();

  // Generate the program once; all ranks replay it identically.
  struct Op {
    int kind;            // 0 barrier, 1 allreduce, 2 alltoallv, 3 allgather,
                         // 4 bcast, 5 bcast_vector
    std::uint64_t arg;   // op-specific parameter
  };
  std::vector<Op> program;
  {
    Xoshiro256 rng(seed);
    const int length = 8 + static_cast<int>(rng.below(12));
    for (int i = 0; i < length; ++i) {
      program.push_back({static_cast<int>(rng.below(6)), rng.below(1000)});
    }
  }

  Runtime runtime(nranks);
  runtime.run([&](Comm& comm) {
    const int rank = comm.rank();
    const int size = comm.size();
    for (std::size_t step = 0; step < program.size(); ++step) {
      const Op& op = program[step];
      switch (op.kind) {
        case 0:
          comm.barrier();
          break;
        case 1: {
          // sum over ranks of (rank * (arg+1)).
          const std::uint64_t value =
              static_cast<std::uint64_t>(rank) * (op.arg + 1);
          const std::uint64_t total =
              comm.allreduce(value, ReduceOp::kSum);
          std::uint64_t expected = 0;
          for (int r = 0; r < size; ++r) {
            expected += static_cast<std::uint64_t>(r) * (op.arg + 1);
          }
          ASSERT_EQ(total, expected) << "step " << step;
          break;
        }
        case 2: {
          // Rank r sends (r*size + dst + arg) exactly (dst % 3 + 1) times.
          std::vector<std::vector<std::uint64_t>> send(
              static_cast<std::size_t>(size));
          for (int dst = 0; dst < size; ++dst) {
            send[static_cast<std::size_t>(dst)].assign(
                static_cast<std::size_t>(dst % 3 + 1),
                static_cast<std::uint64_t>(rank) * size + dst + op.arg);
          }
          const auto result = comm.alltoallv(send);
          for (int src = 0; src < size; ++src) {
            const auto slice = result.from(src);
            ASSERT_EQ(slice.size(),
                      static_cast<std::size_t>(rank % 3 + 1));
            for (const auto v : slice) {
              ASSERT_EQ(v, static_cast<std::uint64_t>(src) * size + rank +
                               op.arg)
                  << "step " << step;
            }
          }
          break;
        }
        case 3: {
          const auto all = comm.allgather(
              static_cast<std::uint64_t>(rank) + op.arg);
          for (int r = 0; r < size; ++r) {
            ASSERT_EQ(all[static_cast<std::size_t>(r)],
                      static_cast<std::uint64_t>(r) + op.arg);
          }
          break;
        }
        case 4: {
          const int root = static_cast<int>(op.arg) % size;
          const std::uint64_t value =
              rank == root ? op.arg * 13 + 7 : 0;
          ASSERT_EQ(comm.bcast(value, root), op.arg * 13 + 7);
          break;
        }
        case 5: {
          const int root = static_cast<int>(op.arg) % size;
          std::vector<std::uint32_t> mine;
          if (rank == root) {
            mine.resize(op.arg % 17 + 1);
            std::iota(mine.begin(), mine.end(),
                      static_cast<std::uint32_t>(op.arg));
          }
          const auto result = comm.bcast_vector(mine, root);
          ASSERT_EQ(result.size(), op.arg % 17 + 1);
          ASSERT_EQ(result.front(), static_cast<std::uint32_t>(op.arg));
          break;
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndSeeds, CollectiveFuzz,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16),
                       ::testing::Values(1u, 2u, 3u, 4u)));

// --- nonblocking ialltoallv: randomized schedules against the blocking
// oracle. Payload sizes vary per (src, dst, round); the completion
// strategy for each round — wait immediately, defer with two requests in
// flight, or test()-poll — is drawn from a program-level rng so every
// rank follows the same matched posting order.

std::size_t payload_len(int src, int dst, int round) {
  return static_cast<std::size_t>((src * 3 + dst * 5 + round) % 7);
}

std::uint64_t payload_value(int src, int dst, int round, std::size_t j) {
  return static_cast<std::uint64_t>(src) * 1000003 +
         static_cast<std::uint64_t>(dst) * 101 +
         static_cast<std::uint64_t>(round) * 13 + j;
}

std::vector<std::vector<std::uint64_t>> make_send(int rank, int size,
                                                  int round) {
  std::vector<std::vector<std::uint64_t>> send(
      static_cast<std::size_t>(size));
  for (int dst = 0; dst < size; ++dst) {
    auto& bucket = send[static_cast<std::size_t>(dst)];
    bucket.resize(payload_len(rank, dst, round));
    for (std::size_t j = 0; j < bucket.size(); ++j) {
      bucket[j] = payload_value(rank, dst, round, j);
    }
  }
  return send;
}

void verify_delivery(Comm& comm, const AlltoallvResult<std::uint64_t>& result,
                     int round) {
  const int rank = comm.rank();
  const int size = comm.size();
  for (int src = 0; src < size; ++src) {
    const auto slice = result.from(src);
    ASSERT_EQ(slice.size(), payload_len(src, rank, round))
        << "round " << round << " src " << src;
    for (std::size_t j = 0; j < slice.size(); ++j) {
      ASSERT_EQ(slice[j], payload_value(src, rank, round, j))
          << "round " << round << " src " << src;
    }
  }
  // The blocking collective with the same send matrix is the oracle for
  // the full payload, counts, and offsets.
  const auto blocking = comm.alltoallv(make_send(rank, size, round));
  ASSERT_EQ(result.data, blocking.data) << "round " << round;
  ASSERT_EQ(result.counts, blocking.counts) << "round " << round;
  ASSERT_EQ(result.offsets, blocking.offsets) << "round " << round;
}

class IalltoallvFuzz
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(IalltoallvFuzz, RandomSchedulesMatchBlockingExchange) {
  const auto [nranks, seed] = GetParam();
  Runtime runtime(nranks);
  runtime.run([&](Comm& comm) {
    const int rank = comm.rank();
    const int size = comm.size();
    // Same rng stream on every rank: the strategy sequence is part of the
    // collective program, so posting order stays matched.
    Xoshiro256 rng(seed * 7919 + 1);
    const int nrounds = 8 + static_cast<int>(rng.below(8));

    struct Deferred {
      Request<std::uint64_t> request;
      int round;
    };
    std::vector<Deferred> in_flight;
    auto drain_oldest = [&] {
      Deferred deferred = std::move(in_flight.front());
      in_flight.erase(in_flight.begin());
      const auto result = deferred.request.wait();
      verify_delivery(comm, result, deferred.round);
    };

    for (int round = 0; round < nrounds; ++round) {
      auto request = comm.ialltoallv(make_send(rank, size, round));
      switch (rng.below(3)) {
        case 0: {  // wait immediately
          const auto result = request.wait();
          verify_delivery(comm, result, round);
          break;
        }
        case 1: {  // defer; at most two requests outstanding
          in_flight.push_back({std::move(request), round});
          if (in_flight.size() == 2) drain_oldest();
          break;
        }
        default: {  // test()-poll until complete, then collect
          while (!request.test()) {
          }
          const auto result = request.wait();
          verify_delivery(comm, result, round);
          break;
        }
      }
    }
    while (!in_flight.empty()) drain_oldest();
  });
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndSeeds, IalltoallvFuzz,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16),
                       ::testing::Values(1u, 2u, 3u, 4u)));

// Ranks disagreeing on the element type of a nonblocking collective is a
// matched-order violation: the board aborts every rank instead of
// deadlocking or reinterpreting bytes.
TEST(IalltoallvAbort, MismatchedPostingOrderAbortsAllRanks) {
  Runtime runtime(2);
  EXPECT_THROW(
      runtime.run([&](Comm& comm) {
        if (comm.rank() == 0) {
          std::vector<std::vector<std::uint64_t>> send(
              2, std::vector<std::uint64_t>{1});
          auto request = comm.ialltoallv(send);
          (void)request.wait();
        } else {
          std::vector<std::vector<std::uint32_t>> send(
              2, std::vector<std::uint32_t>{1});
          auto request = comm.ialltoallv(send);
          (void)request.wait();
        }
      }),
      SimulationError);
}

// Dropping an armed request without wait()/test() completion is a bug in
// the caller; the destructor enforces it.
TEST(IalltoallvAbort, DroppingUncompletedRequestThrows) {
  Runtime runtime(1);
  EXPECT_THROW(
      runtime.run([&](Comm& comm) {
        std::vector<std::vector<std::uint64_t>> send(
            1, std::vector<std::uint64_t>{42});
        auto request = comm.ialltoallv(send);
        (void)request;  // scope exit without completion
      }),
      PreconditionError);
}

// A completed test() satisfies the completion contract even if the result
// is never collected through wait().
TEST(IalltoallvAbort, CompletedTestSatisfiesDestructor) {
  Runtime runtime(1);
  runtime.run([&](Comm& comm) {
    std::vector<std::vector<std::uint64_t>> send(
        1, std::vector<std::uint64_t>{42});
    auto request = comm.ialltoallv(send);
    while (!request.test()) {
    }
  });
}

}  // namespace
}  // namespace dedukt::mpisim
