// Randomized collective sequences: every rank executes the same randomly
// generated program of collectives; each operation is self-verifying
// against a sequentially computed oracle. Catches ordering, reuse, and
// synchronization bugs that single-collective tests cannot.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "dedukt/mpisim/runtime.hpp"
#include "dedukt/util/rng.hpp"

namespace dedukt::mpisim {
namespace {

class CollectiveFuzz
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(CollectiveFuzz, RandomProgramSelfVerifies) {
  const auto [nranks, seed] = GetParam();

  // Generate the program once; all ranks replay it identically.
  struct Op {
    int kind;            // 0 barrier, 1 allreduce, 2 alltoallv, 3 allgather,
                         // 4 bcast, 5 bcast_vector
    std::uint64_t arg;   // op-specific parameter
  };
  std::vector<Op> program;
  {
    Xoshiro256 rng(seed);
    const int length = 8 + static_cast<int>(rng.below(12));
    for (int i = 0; i < length; ++i) {
      program.push_back({static_cast<int>(rng.below(6)), rng.below(1000)});
    }
  }

  Runtime runtime(nranks);
  runtime.run([&](Comm& comm) {
    const int rank = comm.rank();
    const int size = comm.size();
    for (std::size_t step = 0; step < program.size(); ++step) {
      const Op& op = program[step];
      switch (op.kind) {
        case 0:
          comm.barrier();
          break;
        case 1: {
          // sum over ranks of (rank * (arg+1)).
          const std::uint64_t value =
              static_cast<std::uint64_t>(rank) * (op.arg + 1);
          const std::uint64_t total =
              comm.allreduce(value, ReduceOp::kSum);
          std::uint64_t expected = 0;
          for (int r = 0; r < size; ++r) {
            expected += static_cast<std::uint64_t>(r) * (op.arg + 1);
          }
          ASSERT_EQ(total, expected) << "step " << step;
          break;
        }
        case 2: {
          // Rank r sends (r*size + dst + arg) exactly (dst % 3 + 1) times.
          std::vector<std::vector<std::uint64_t>> send(
              static_cast<std::size_t>(size));
          for (int dst = 0; dst < size; ++dst) {
            send[static_cast<std::size_t>(dst)].assign(
                static_cast<std::size_t>(dst % 3 + 1),
                static_cast<std::uint64_t>(rank) * size + dst + op.arg);
          }
          const auto result = comm.alltoallv(send);
          for (int src = 0; src < size; ++src) {
            const auto slice = result.from(src);
            ASSERT_EQ(slice.size(),
                      static_cast<std::size_t>(rank % 3 + 1));
            for (const auto v : slice) {
              ASSERT_EQ(v, static_cast<std::uint64_t>(src) * size + rank +
                               op.arg)
                  << "step " << step;
            }
          }
          break;
        }
        case 3: {
          const auto all = comm.allgather(
              static_cast<std::uint64_t>(rank) + op.arg);
          for (int r = 0; r < size; ++r) {
            ASSERT_EQ(all[static_cast<std::size_t>(r)],
                      static_cast<std::uint64_t>(r) + op.arg);
          }
          break;
        }
        case 4: {
          const int root = static_cast<int>(op.arg) % size;
          const std::uint64_t value =
              rank == root ? op.arg * 13 + 7 : 0;
          ASSERT_EQ(comm.bcast(value, root), op.arg * 13 + 7);
          break;
        }
        case 5: {
          const int root = static_cast<int>(op.arg) % size;
          std::vector<std::uint32_t> mine;
          if (rank == root) {
            mine.resize(op.arg % 17 + 1);
            std::iota(mine.begin(), mine.end(),
                      static_cast<std::uint32_t>(op.arg));
          }
          const auto result = comm.bcast_vector(mine, root);
          ASSERT_EQ(result.size(), op.arg % 17 + 1);
          ASSERT_EQ(result.front(), static_cast<std::uint32_t>(op.arg));
          break;
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndSeeds, CollectiveFuzz,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16),
                       ::testing::Values(1u, 2u, 3u, 4u)));

}  // namespace
}  // namespace dedukt::mpisim
