// Sustained nonblocking-collective pressure: every rank keeps two
// ialltoallv requests in flight across many rounds, completing them with a
// mix of wait() and test()-polling. Run under TSan in CI, this is the
// lock-discipline check for the shared AsyncState (payload copies at post,
// slice copies at completion, per-op refcounted cleanup).
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "dedukt/mpisim/runtime.hpp"

namespace dedukt::mpisim {
namespace {

constexpr int kRanks = 8;
constexpr int kRounds = 64;

std::uint64_t payload_value(int src, int dst, int round, std::size_t j) {
  return (static_cast<std::uint64_t>(src) << 40) ^
         (static_cast<std::uint64_t>(dst) << 28) ^
         (static_cast<std::uint64_t>(round) << 8) ^ j;
}

std::vector<std::vector<std::uint64_t>> make_send(int rank, int round) {
  std::vector<std::vector<std::uint64_t>> send(kRanks);
  for (int dst = 0; dst < kRanks; ++dst) {
    auto& bucket = send[static_cast<std::size_t>(dst)];
    bucket.resize(static_cast<std::size_t>((rank + dst + round) % 4 + 1));
    for (std::size_t j = 0; j < bucket.size(); ++j) {
      bucket[j] = payload_value(rank, dst, round, j);
    }
  }
  return send;
}

void verify(const AlltoallvResult<std::uint64_t>& result, int rank,
            int round) {
  for (int src = 0; src < kRanks; ++src) {
    const auto slice = result.from(src);
    ASSERT_EQ(slice.size(),
              static_cast<std::size_t>((src + rank + round) % 4 + 1))
        << "round " << round << " src " << src;
    for (std::size_t j = 0; j < slice.size(); ++j) {
      ASSERT_EQ(slice[j], payload_value(src, rank, round, j))
          << "round " << round << " src " << src;
    }
  }
}

TEST(RequestStress, TwoRequestsInFlightAcrossManyRounds) {
  Runtime runtime(kRanks);
  runtime.run([&](Comm& comm) {
    const int rank = comm.rank();

    struct Pending {
      Request<std::uint64_t> request;
      int round;
    };
    std::vector<Pending> in_flight;
    auto drain_oldest = [&] {
      Pending pending = std::move(in_flight.front());
      in_flight.erase(in_flight.begin());
      // Odd rounds poll before collecting, even rounds block outright —
      // both paths race the other ranks' posts under TSan.
      if (pending.round % 2 == 1) {
        while (!pending.request.test()) {
        }
      }
      const auto result = pending.request.wait();
      verify(result, rank, pending.round);
    };

    for (int round = 0; round < kRounds; ++round) {
      in_flight.push_back({comm.ialltoallv(make_send(rank, round)), round});
      if (in_flight.size() == 2) drain_oldest();
    }
    while (!in_flight.empty()) drain_oldest();
  });
}

}  // namespace
}  // namespace dedukt::mpisim
