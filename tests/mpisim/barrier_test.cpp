#include "dedukt/mpisim/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "dedukt/util/error.hpp"

namespace dedukt::mpisim {
namespace {

TEST(BarrierTest, SingleParticipantNeverBlocks) {
  Barrier barrier(1);
  for (int i = 0; i < 10; ++i) barrier.arrive_and_wait();
}

TEST(BarrierTest, SynchronizesPhases) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  Barrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier every thread of this round has incremented.
        if (counter.load() < (round + 1) * kThreads) failed = true;
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kThreads * kRounds);
}

TEST(BarrierTest, AbortWakesWaiters) {
  Barrier barrier(2);
  std::atomic<bool> threw{false};
  std::thread waiter([&] {
    try {
      barrier.arrive_and_wait();
    } catch (const SimulationError&) {
      threw = true;
    }
  });
  // Give the waiter time to block, then abort instead of arriving.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  barrier.abort();
  waiter.join();
  EXPECT_TRUE(threw.load());
}

TEST(BarrierTest, ArrivalAfterAbortThrows) {
  Barrier barrier(3);
  barrier.abort();
  EXPECT_THROW(barrier.arrive_and_wait(), SimulationError);
  EXPECT_TRUE(barrier.aborted());
}

TEST(BarrierTest, RejectsNonPositiveParticipants) {
  EXPECT_THROW(Barrier(0), PreconditionError);
}

TEST(BarrierTest, ReusableAcrossGenerations) {
  Barrier barrier(4);
  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 100; ++round) barrier.arrive_and_wait();
      done.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(done.load(), 4);
}

}  // namespace
}  // namespace dedukt::mpisim
