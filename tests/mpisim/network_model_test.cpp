#include "dedukt/mpisim/network_model.hpp"

#include <gtest/gtest.h>

namespace dedukt::mpisim {
namespace {

TEST(NetworkModelTest, SingleRankIsFree) {
  const NetworkModel m = NetworkModel::summit();
  EXPECT_DOUBLE_EQ(m.alltoallv_seconds(1 << 20, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.collective_latency_seconds(1), 0.0);
}

TEST(NetworkModelTest, TimeGrowsWithBytes) {
  const NetworkModel m = NetworkModel::summit();
  const double small = m.alltoallv_seconds(1 << 20, 8);
  const double large = m.alltoallv_seconds(1 << 30, 8);
  EXPECT_GT(large, small);
}

TEST(NetworkModelTest, BandwidthTermScalesLinearly) {
  NetworkModel m = NetworkModel::summit();
  m.latency_s = 0;  // isolate the beta term
  const double t1 = m.alltoallv_seconds(1'000'000, 4);
  const double t2 = m.alltoallv_seconds(2'000'000, 4);
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(NetworkModelTest, PerRankBandwidthSharesNodeInjection) {
  NetworkModel gpu = NetworkModel::summit();  // 6 ranks/node
  NetworkModel cpu = NetworkModel::summit();
  cpu.ranks_per_node = 42;
  EXPECT_NEAR(gpu.per_rank_bandwidth() / cpu.per_rank_bandwidth(),
              42.0 / 6.0, 1e-9);
}

TEST(NetworkModelTest, EqualPerNodeVolumeGivesEqualTime) {
  // The paper observes CPU and GPU runs have "roughly the same" exchange
  // time (Fig. 3): same per-node volume, same node bandwidth.
  NetworkModel gpu = NetworkModel::summit();  // 6 ranks/node
  NetworkModel cpu = NetworkModel::summit();
  cpu.ranks_per_node = 42;
  gpu.latency_s = cpu.latency_s = 0;
  const std::uint64_t node_bytes = 1ull << 30;
  const double t_gpu = gpu.alltoallv_seconds(node_bytes / 6, 384);
  const double t_cpu = cpu.alltoallv_seconds(node_bytes / 42, 2688);
  EXPECT_NEAR(t_gpu, t_cpu, t_gpu * 1e-6);
}

TEST(NetworkModelTest, LatencyTermGrowsWithRanks) {
  NetworkModel m = NetworkModel::summit();
  const double t8 = m.alltoallv_seconds(0, 8);
  const double t64 = m.alltoallv_seconds(0, 64);
  EXPECT_GT(t64, t8);
}

TEST(NetworkModelTest, CollectiveLatencyIsLogarithmic) {
  NetworkModel m;
  m.latency_s = 1.0;
  EXPECT_DOUBLE_EQ(m.collective_latency_seconds(2), 1.0);
  EXPECT_DOUBLE_EQ(m.collective_latency_seconds(8), 3.0);
  EXPECT_DOUBLE_EQ(m.collective_latency_seconds(9), 4.0);
}

TEST(NetworkModelTest, NodesForClampsRanksPerNode) {
  const NetworkModel m = NetworkModel::summit();  // 6 ranks/node
  EXPECT_EQ(m.nodes_for(0), 0);
  EXPECT_EQ(m.nodes_for(1), 1);
  EXPECT_EQ(m.nodes_for(4), 1);   // fewer ranks than a node: one node
  EXPECT_EQ(m.nodes_for(6), 1);
  EXPECT_EQ(m.nodes_for(7), 2);   // partial second node
  EXPECT_EQ(m.nodes_for(96), 16);
}

TEST(NetworkModelTest, HierarchicalDegeneratesOnOneRank) {
  const NetworkModel m = NetworkModel::summit();
  EXPECT_DOUBLE_EQ(m.hierarchical_seconds(1 << 20, 1 << 20, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.hierarchical_volume_seconds(1 << 20, 1 << 20, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.hierarchical_intra_seconds(1 << 20, 1), 0.0);
}

TEST(NetworkModelTest, HierarchicalInterHopRunsAtFullNodeInjection) {
  NetworkModel m = NetworkModel::summit();
  m.latency_s = 0;
  m.intra_latency_s = 0;  // isolate the beta terms
  // With no intra-node staging, moving B bytes through the NIC costs
  // ranks_per_node times less than the flat per-rank share.
  const std::uint64_t bytes = 1ull << 30;
  const double flat = m.alltoallv_seconds(bytes, 96);
  const double hier = m.hierarchical_seconds(0, bytes, 96);
  EXPECT_NEAR(flat / hier, static_cast<double>(m.ranks_per_node), 1e-9);
}

TEST(NetworkModelTest, HierarchicalLatencyCountsNodesNotRanks) {
  NetworkModel m = NetworkModel::summit();  // 6 ranks/node, alpha 5us
  // Zero payload: the flat exchange pays P-1 message latencies, the
  // hierarchical one pays (P/6 - 1) NIC latencies plus 2*(6-1) NVLink
  // latencies — far cheaper at scale.
  const double flat = m.alltoallv_seconds(0, 96);
  const double hier = m.hierarchical_seconds(0, 0, 96);
  EXPECT_DOUBLE_EQ(flat, m.latency_s * 95);
  EXPECT_DOUBLE_EQ(hier, m.latency_s * 15 + m.intra_latency_s * 10);
  EXPECT_LT(hier, flat);
}

TEST(NetworkModelTest, HierarchicalVolumeSplitsIntoIntraAndInter) {
  const NetworkModel m = NetworkModel::summit();
  const std::uint64_t intra = 3 << 20, inter = 5 << 20;
  EXPECT_DOUBLE_EQ(m.hierarchical_volume_seconds(intra, inter, 96),
                   m.hierarchical_intra_volume_seconds(intra) +
                       static_cast<double>(inter) /
                           (m.node_injection_bw * m.efficiency));
  // The intra share is part of, and strictly below, the full time.
  EXPECT_LT(m.hierarchical_intra_seconds(intra, 96),
            m.hierarchical_seconds(intra, inter, 96));
}

TEST(NetworkModelTest, LocalModelIsCheap) {
  const NetworkModel local = NetworkModel::local();
  const NetworkModel summit = NetworkModel::summit();
  EXPECT_LT(local.alltoallv_seconds(1 << 20, 8),
            summit.alltoallv_seconds(1 << 20, 8));
}

}  // namespace
}  // namespace dedukt::mpisim
