#include "dedukt/mpisim/network_model.hpp"

#include <gtest/gtest.h>

namespace dedukt::mpisim {
namespace {

TEST(NetworkModelTest, SingleRankIsFree) {
  const NetworkModel m = NetworkModel::summit();
  EXPECT_DOUBLE_EQ(m.alltoallv_seconds(1 << 20, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.collective_latency_seconds(1), 0.0);
}

TEST(NetworkModelTest, TimeGrowsWithBytes) {
  const NetworkModel m = NetworkModel::summit();
  const double small = m.alltoallv_seconds(1 << 20, 8);
  const double large = m.alltoallv_seconds(1 << 30, 8);
  EXPECT_GT(large, small);
}

TEST(NetworkModelTest, BandwidthTermScalesLinearly) {
  NetworkModel m = NetworkModel::summit();
  m.latency_s = 0;  // isolate the beta term
  const double t1 = m.alltoallv_seconds(1'000'000, 4);
  const double t2 = m.alltoallv_seconds(2'000'000, 4);
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(NetworkModelTest, PerRankBandwidthSharesNodeInjection) {
  NetworkModel gpu = NetworkModel::summit();  // 6 ranks/node
  NetworkModel cpu = NetworkModel::summit();
  cpu.ranks_per_node = 42;
  EXPECT_NEAR(gpu.per_rank_bandwidth() / cpu.per_rank_bandwidth(),
              42.0 / 6.0, 1e-9);
}

TEST(NetworkModelTest, EqualPerNodeVolumeGivesEqualTime) {
  // The paper observes CPU and GPU runs have "roughly the same" exchange
  // time (Fig. 3): same per-node volume, same node bandwidth.
  NetworkModel gpu = NetworkModel::summit();  // 6 ranks/node
  NetworkModel cpu = NetworkModel::summit();
  cpu.ranks_per_node = 42;
  gpu.latency_s = cpu.latency_s = 0;
  const std::uint64_t node_bytes = 1ull << 30;
  const double t_gpu = gpu.alltoallv_seconds(node_bytes / 6, 384);
  const double t_cpu = cpu.alltoallv_seconds(node_bytes / 42, 2688);
  EXPECT_NEAR(t_gpu, t_cpu, t_gpu * 1e-6);
}

TEST(NetworkModelTest, LatencyTermGrowsWithRanks) {
  NetworkModel m = NetworkModel::summit();
  const double t8 = m.alltoallv_seconds(0, 8);
  const double t64 = m.alltoallv_seconds(0, 64);
  EXPECT_GT(t64, t8);
}

TEST(NetworkModelTest, CollectiveLatencyIsLogarithmic) {
  NetworkModel m;
  m.latency_s = 1.0;
  EXPECT_DOUBLE_EQ(m.collective_latency_seconds(2), 1.0);
  EXPECT_DOUBLE_EQ(m.collective_latency_seconds(8), 3.0);
  EXPECT_DOUBLE_EQ(m.collective_latency_seconds(9), 4.0);
}

TEST(NetworkModelTest, LocalModelIsCheap) {
  const NetworkModel local = NetworkModel::local();
  const NetworkModel summit = NetworkModel::summit();
  EXPECT_LT(local.alltoallv_seconds(1 << 20, 8),
            summit.alltoallv_seconds(1 << 20, 8));
}

}  // namespace
}  // namespace dedukt::mpisim
