#include "dedukt/mpisim/comm.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "dedukt/mpisim/runtime.hpp"
#include "dedukt/util/rng.hpp"

namespace dedukt::mpisim {
namespace {

TEST(CommTest, RankAndSize) {
  Runtime runtime(5);
  std::vector<int> seen(5, -1);
  runtime.run([&](Comm& comm) {
    EXPECT_EQ(comm.size(), 5);
    seen[static_cast<std::size_t>(comm.rank())] = comm.rank();
  });
  for (int r = 0; r < 5; ++r) EXPECT_EQ(seen[static_cast<std::size_t>(r)], r);
}

TEST(CommTest, AlltoallvDeliversToCorrectRank) {
  constexpr int kRanks = 4;
  Runtime runtime(kRanks);
  runtime.run([&](Comm& comm) {
    // Rank r sends value 100*r + dst to each dst, dst+1 copies of it.
    std::vector<std::vector<std::uint32_t>> send(kRanks);
    for (int dst = 0; dst < kRanks; ++dst) {
      send[static_cast<std::size_t>(dst)].assign(
          static_cast<std::size_t>(dst + 1),
          static_cast<std::uint32_t>(100 * comm.rank() + dst));
    }
    const auto result = comm.alltoallv(send);
    // This rank receives rank()+1 elements from each source.
    for (int src = 0; src < kRanks; ++src) {
      const auto slice = result.from(src);
      ASSERT_EQ(slice.size(), static_cast<std::size_t>(comm.rank() + 1));
      for (const std::uint32_t v : slice) {
        EXPECT_EQ(v, static_cast<std::uint32_t>(100 * src + comm.rank()));
      }
    }
  });
}

TEST(CommTest, AlltoallvOffsetsPrecomputedForAllSources) {
  constexpr int kRanks = 16;
  Runtime runtime(kRanks);
  runtime.run([&](Comm& comm) {
    const int rank = comm.rank();
    // Rank r sends (r + dst) % 5 elements to dst.
    std::vector<std::vector<std::uint64_t>> send(kRanks);
    for (int dst = 0; dst < kRanks; ++dst) {
      auto& bucket = send[static_cast<std::size_t>(dst)];
      bucket.resize(static_cast<std::size_t>((rank + dst) % 5));
      for (std::size_t j = 0; j < bucket.size(); ++j) {
        bucket[j] = static_cast<std::uint64_t>(rank) * 1000 +
                    static_cast<std::uint64_t>(dst) * 10 + j;
      }
    }
    const auto result = comm.alltoallv(send);

    // `offsets` is stored at assembly as the exclusive prefix sum of
    // `counts`, so from() never re-sums the prefix.
    ASSERT_EQ(result.counts.size(), static_cast<std::size_t>(kRanks));
    ASSERT_EQ(result.offsets.size(), static_cast<std::size_t>(kRanks));
    std::uint64_t running = 0;
    for (int src = 0; src < kRanks; ++src) {
      EXPECT_EQ(result.offsets[static_cast<std::size_t>(src)], running);
      running += result.counts[static_cast<std::size_t>(src)];
      const auto slice = result.from(src);
      ASSERT_EQ(slice.size(), static_cast<std::size_t>((src + rank) % 5));
      for (std::size_t j = 0; j < slice.size(); ++j) {
        EXPECT_EQ(slice[j], static_cast<std::uint64_t>(src) * 1000 +
                                static_cast<std::uint64_t>(rank) * 10 + j);
      }
    }
    EXPECT_EQ(running, result.data.size());
  });
}

TEST(CommTest, AlltoallvEmptyBuffers) {
  Runtime runtime(3);
  runtime.run([&](Comm& comm) {
    std::vector<std::vector<std::uint64_t>> send(3);
    const auto result = comm.alltoallv(send);
    EXPECT_TRUE(result.data.empty());
    for (const auto c : result.counts) EXPECT_EQ(c, 0u);
  });
}

TEST(CommTest, AlltoallvRandomizedMultisetPreserved) {
  constexpr int kRanks = 6;
  Runtime runtime(kRanks);
  std::vector<std::uint64_t> sent_sum(kRanks, 0);
  std::vector<std::uint64_t> recv_sum(kRanks, 0);
  runtime.run([&](Comm& comm) {
    Xoshiro256 rng(static_cast<std::uint64_t>(comm.rank()) + 1);
    std::vector<std::vector<std::uint64_t>> send(kRanks);
    std::uint64_t my_sent = 0;
    for (int dst = 0; dst < kRanks; ++dst) {
      const std::size_t n = rng.below(50);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t v = rng.below(1'000'000);
        send[static_cast<std::size_t>(dst)].push_back(v);
        my_sent += v;
      }
    }
    sent_sum[static_cast<std::size_t>(comm.rank())] = my_sent;
    const auto result = comm.alltoallv(send);
    recv_sum[static_cast<std::size_t>(comm.rank())] = std::accumulate(
        result.data.begin(), result.data.end(), std::uint64_t{0});
  });
  // Conservation: total payload sent == total payload received.
  EXPECT_EQ(std::accumulate(sent_sum.begin(), sent_sum.end(), 0ull),
            std::accumulate(recv_sum.begin(), recv_sum.end(), 0ull));
}

TEST(CommTest, AlltoallFixedCounts) {
  constexpr int kRanks = 4;
  Runtime runtime(kRanks);
  runtime.run([&](Comm& comm) {
    std::vector<int> send(kRanks);
    for (int dst = 0; dst < kRanks; ++dst) {
      send[static_cast<std::size_t>(dst)] = comm.rank() * 10 + dst;
    }
    const auto recv = comm.alltoall(send);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(kRanks));
    for (int src = 0; src < kRanks; ++src) {
      EXPECT_EQ(recv[static_cast<std::size_t>(src)],
                src * 10 + comm.rank());
    }
  });
}

TEST(CommTest, AllreduceSum) {
  Runtime runtime(7);
  runtime.run([&](Comm& comm) {
    const int total =
        comm.allreduce(comm.rank() + 1, ReduceOp::kSum);
    EXPECT_EQ(total, 28);  // 1+2+...+7
  });
}

TEST(CommTest, AllreduceMinMax) {
  Runtime runtime(5);
  runtime.run([&](Comm& comm) {
    EXPECT_EQ(comm.allreduce(comm.rank(), ReduceOp::kMin), 0);
    EXPECT_EQ(comm.allreduce(comm.rank(), ReduceOp::kMax), 4);
  });
}

TEST(CommTest, AllreduceDouble) {
  Runtime runtime(4);
  runtime.run([&](Comm& comm) {
    const double sum = comm.allreduce(0.5, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, 2.0);
  });
}

TEST(CommTest, Allgather) {
  Runtime runtime(6);
  runtime.run([&](Comm& comm) {
    const auto all = comm.allgather(comm.rank() * comm.rank());
    ASSERT_EQ(all.size(), 6u);
    for (int r = 0; r < 6; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r * r);
    }
  });
}

TEST(CommTest, GathervCollectsAtRootOnly) {
  Runtime runtime(4);
  runtime.run([&](Comm& comm) {
    std::vector<std::uint8_t> mine(
        static_cast<std::size_t>(comm.rank()),
        static_cast<std::uint8_t>(comm.rank()));
    const auto gathered = comm.gatherv(mine, /*root=*/2);
    if (comm.rank() == 2) {
      ASSERT_EQ(gathered.size(), 4u);
      for (int src = 0; src < 4; ++src) {
        EXPECT_EQ(gathered[static_cast<std::size_t>(src)].size(),
                  static_cast<std::size_t>(src));
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
}

TEST(CommTest, Bcast) {
  Runtime runtime(5);
  runtime.run([&](Comm& comm) {
    const std::uint64_t value = comm.rank() == 3 ? 0xDEADBEEFull : 0;
    EXPECT_EQ(comm.bcast(value, /*root=*/3), 0xDEADBEEFull);
  });
}

TEST(CommTest, BcastVectorDeliversRootContents) {
  Runtime runtime(5);
  runtime.run([&](Comm& comm) {
    std::vector<std::uint32_t> mine;
    if (comm.rank() == 2) mine = {10, 20, 30, 40};
    const auto result = comm.bcast_vector(mine, /*root=*/2);
    EXPECT_EQ(result, (std::vector<std::uint32_t>{10, 20, 30, 40}));
  });
}

TEST(CommTest, BcastVectorEmptyIsFine) {
  Runtime runtime(3);
  runtime.run([&](Comm& comm) {
    const auto result =
        comm.bcast_vector(std::vector<std::uint64_t>{}, 0);
    EXPECT_TRUE(result.empty());
  });
}

TEST(CommTest, BcastVectorAccumulatesVolumeModel) {
  Runtime runtime(4, NetworkModel::summit());
  runtime.run([&](Comm& comm) {
    std::vector<std::uint64_t> mine;
    if (comm.rank() == 0) mine.assign(100'000, 7);
    (void)comm.bcast_vector(mine, 0);
    if (comm.rank() != 0) {
      EXPECT_GT(comm.stats().bytes_received, 0u);
      EXPECT_GT(comm.stats().modeled_volume_seconds, 0.0);
    }
  });
}

TEST(CommTest, VolumeShareNeverExceedsTotalModeled) {
  Runtime runtime(3, NetworkModel::summit());
  runtime.run([&](Comm& comm) {
    std::vector<std::vector<std::uint64_t>> send(
        3, std::vector<std::uint64_t>(500, 1));
    (void)comm.alltoallv(send);
    comm.barrier();
    const auto& stats = comm.stats();
    EXPECT_GT(stats.modeled_volume_seconds, 0.0);
    EXPECT_LE(stats.modeled_volume_seconds, stats.modeled_seconds);
  });
}

TEST(CommTest, BarrierCountsAsCollective) {
  Runtime runtime(3);
  runtime.run([&](Comm& comm) {
    comm.barrier();
    comm.barrier();
    EXPECT_EQ(comm.stats().collective_calls, 2u);
  });
}

TEST(CommTest, StatsCountOffRankBytesOnly) {
  constexpr int kRanks = 3;
  Runtime runtime(kRanks);
  runtime.run([&](Comm& comm) {
    // Everyone sends 10 u64 to every rank including itself.
    std::vector<std::vector<std::uint64_t>> send(
        kRanks, std::vector<std::uint64_t>(10, 1));
    (void)comm.alltoallv(send);
    // Self-delivery is not network traffic.
    EXPECT_EQ(comm.stats().bytes_sent, 2u * 10u * 8u);
    EXPECT_EQ(comm.stats().bytes_received, 2u * 10u * 8u);
    EXPECT_EQ(comm.stats().alltoallv_calls, 1u);
  });
}

TEST(CommTest, ModeledTimeAccumulates) {
  Runtime runtime(4, NetworkModel::summit());
  runtime.run([&](Comm& comm) {
    std::vector<std::vector<std::uint64_t>> send(
        4, std::vector<std::uint64_t>(1000, 7));
    (void)comm.alltoallv(send);
    const double after_one = comm.stats().modeled_seconds;
    EXPECT_GT(after_one, 0.0);
    (void)comm.alltoallv(send);
    EXPECT_GT(comm.stats().modeled_seconds, after_one);
  });
}

TEST(CommTest, ModeledTimeAgreesAcrossRanks) {
  constexpr int kRanks = 4;
  Runtime runtime(kRanks, NetworkModel::summit());
  runtime.run([&](Comm& comm) {
    // Skewed volumes: rank 0 sends far more than the others.
    const std::size_t n = comm.rank() == 0 ? 10'000 : 10;
    std::vector<std::vector<std::uint64_t>> send(
        kRanks, std::vector<std::uint64_t>(n, 1));
    (void)comm.alltoallv(send);
  });
  // Bulk-synchronous: everyone pays the busiest rank's exchange time.
  const auto& stats = runtime.stats();
  for (int r = 1; r < kRanks; ++r) {
    EXPECT_DOUBLE_EQ(stats[static_cast<std::size_t>(r)].modeled_seconds,
                     stats[0].modeled_seconds);
  }
}

TEST(CommTest, MismatchedCollectiveTypesThrow) {
  Runtime runtime(2);
  EXPECT_THROW(runtime.run([&](Comm& comm) {
                 if (comm.rank() == 0) {
                   (void)comm.allreduce(1, ReduceOp::kSum);
                 } else {
                   (void)comm.allreduce(1.0, ReduceOp::kSum);
                 }
               }),
               SimulationError);
}

TEST(CommTest, AlltoallvWrongBufferCountThrows) {
  Runtime runtime(3);
  EXPECT_THROW(runtime.run([&](Comm& comm) {
                 std::vector<std::vector<int>> send(2);  // should be 3
                 (void)comm.alltoallv(send);
               }),
               Error);
}

class CommRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(CommRankSweep, AlltoallvIdentityPermutation) {
  const int nranks = GetParam();
  Runtime runtime(nranks);
  runtime.run([&](Comm& comm) {
    // Ring shift: rank r sends its rank to (r+1) % n only.
    std::vector<std::vector<int>> send(static_cast<std::size_t>(nranks));
    send[static_cast<std::size_t>((comm.rank() + 1) % nranks)] = {
        comm.rank()};
    const auto result = comm.alltoallv(send);
    ASSERT_EQ(result.data.size(), 1u);
    EXPECT_EQ(result.data[0], (comm.rank() + nranks - 1) % nranks);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CommRankSweep,
                         ::testing::Values(1, 2, 3, 8, 16, 33));

}  // namespace
}  // namespace dedukt::mpisim
