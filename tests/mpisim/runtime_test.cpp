#include "dedukt/mpisim/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "dedukt/util/error.hpp"

namespace dedukt::mpisim {
namespace {

TEST(RuntimeTest, RunsEveryRankOnce) {
  Runtime runtime(9);
  std::atomic<int> executions{0};
  runtime.run([&](Comm&) { executions.fetch_add(1); });
  EXPECT_EQ(executions.load(), 9);
}

TEST(RuntimeTest, RejectsZeroRanks) {
  EXPECT_THROW(Runtime(0), PreconditionError);
}

TEST(RuntimeTest, ExceptionOnOneRankPropagates) {
  Runtime runtime(4);
  EXPECT_THROW(runtime.run([&](Comm& comm) {
                 if (comm.rank() == 2) {
                   throw ParseError("rank 2 exploded");
                 }
                 comm.barrier();  // would deadlock without abort support
               }),
               ParseError);
}

TEST(RuntimeTest, ExceptionMessageSurvives) {
  Runtime runtime(3);
  try {
    runtime.run([&](Comm& comm) {
      if (comm.rank() == 0) throw Error("specific failure detail");
      comm.barrier();
    });
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    const bool original =
        what.find("specific failure detail") != std::string::npos;
    const bool abort_side =
        what.find("aborted") != std::string::npos;
    // The first error wins; other ranks see barrier aborts which must NOT
    // mask the original when rank 0's error is recorded first. Either way
    // an Error is thrown; most of the time the original survives.
    EXPECT_TRUE(original || abort_side);
  }
}

TEST(RuntimeTest, ReusableAcrossRuns) {
  Runtime runtime(4);
  for (int round = 0; round < 3; ++round) {
    runtime.run([&](Comm& comm) { comm.barrier(); });
  }
  EXPECT_EQ(runtime.total_stats().collective_calls, 3u * 4u);
}

TEST(RuntimeTest, StatsAccumulateAndReset) {
  Runtime runtime(2);
  runtime.run([&](Comm& comm) {
    std::vector<std::vector<std::uint64_t>> send(
        2, std::vector<std::uint64_t>(4, 1));
    (void)comm.alltoallv(send);
  });
  EXPECT_GT(runtime.total_stats().bytes_sent, 0u);
  runtime.reset_stats();
  EXPECT_EQ(runtime.total_stats().bytes_sent, 0u);
  EXPECT_EQ(runtime.total_stats().alltoallv_calls, 0u);
}

TEST(RuntimeTest, ManyRanksOnOneHost) {
  // The fig-9 benchmarks run up to 768 ranks; make sure the runtime holds.
  Runtime runtime(256);
  std::atomic<int> executions{0};
  runtime.run([&](Comm& comm) {
    comm.barrier();
    executions.fetch_add(1);
    const int sum = comm.allreduce(1, ReduceOp::kSum);
    EXPECT_EQ(sum, 256);
  });
  EXPECT_EQ(executions.load(), 256);
}

TEST(RuntimeTest, TotalStatsTakesMaxModeledSeconds) {
  Runtime runtime(3, NetworkModel::summit());
  runtime.run([&](Comm& comm) { comm.barrier(); });
  double max_modeled = 0;
  for (const auto& s : runtime.stats()) {
    max_modeled = std::max(max_modeled, s.modeled_seconds);
  }
  EXPECT_DOUBLE_EQ(runtime.total_stats().modeled_seconds, max_modeled);
}

}  // namespace
}  // namespace dedukt::mpisim
