// Shard and manifest format tests: round-trips, the prefix index, and a
// fuzz-ish battery of corrupted inputs that must all raise ParseError.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dedukt/kmer/kmer.hpp"
#include "dedukt/store/manifest.hpp"
#include "dedukt/store/shard.hpp"
#include "dedukt/util/error.hpp"

namespace dedukt::store {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

ShardFile sample_shard() {
  // k=5: prefix covers 4 bases, so keys sharing the first four bases share
  // a bucket. Sorted and unique by construction.
  return make_shard({{0x001, 2}, {0x003, 7}, {0x0F2, 1}, {0x3FF, 42}}, 5,
                    io::BaseEncoding::kStandard);
}

TEST(ShardFormatTest, PrefixIndexBoundsEveryBucket) {
  const ShardFile shard = sample_shard();
  const int shift = shard_prefix_shift(5);
  ASSERT_EQ(shard.index.size(), shard_fanout(5) + 1);
  EXPECT_EQ(shard.index.front(), 0u);
  EXPECT_EQ(shard.index.back(), shard.entries());
  for (std::size_t i = 0; i < shard.keys.size(); ++i) {
    const std::uint64_t bucket = shard.keys[i] >> shift;
    EXPECT_GE(i, shard.index[bucket]);
    EXPECT_LT(i, shard.index[bucket + 1]);
  }
}

TEST(ShardFormatTest, EmptyShardHasAllZeroIndex) {
  const ShardFile shard = make_shard({}, 7, io::BaseEncoding::kRandomized);
  EXPECT_EQ(shard.entries(), 0u);
  for (const std::uint64_t offset : shard.index) EXPECT_EQ(offset, 0u);
}

TEST(ShardFormatTest, RoundTrip) {
  const ShardFile original = sample_shard();
  const std::string path = temp_path("shard_roundtrip.dksh");
  write_shard_file(path, original);
  const ShardFile loaded = read_shard_file(path);
  EXPECT_EQ(loaded.k, original.k);
  EXPECT_EQ(loaded.encoding, original.encoding);
  EXPECT_EQ(loaded.keys, original.keys);
  EXPECT_EQ(loaded.counts, original.counts);
  EXPECT_EQ(loaded.index, original.index);
  EXPECT_EQ(loaded.file_bytes(), slurp(path).size());
}

TEST(ShardFormatTest, TruncationAtEveryOffsetRejected) {
  const std::string path = temp_path("shard_truncated.dksh");
  write_shard_file(path, sample_shard());
  const std::string bytes = slurp(path);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    spit(path, bytes.substr(0, len));
    EXPECT_THROW(read_shard_file(path), ParseError) << "at length " << len;
  }
}

TEST(ShardFormatTest, TrailingBytesRejected) {
  const std::string path = temp_path("shard_trailing.dksh");
  write_shard_file(path, sample_shard());
  spit(path, slurp(path) + "x");
  EXPECT_THROW(read_shard_file(path), ParseError);
}

TEST(ShardFormatTest, BadMagicRejected) {
  const std::string path = temp_path("shard_magic.dksh");
  write_shard_file(path, sample_shard());
  std::string bytes = slurp(path);
  bytes[0] = 'X';
  spit(path, bytes);
  EXPECT_THROW(read_shard_file(path), ParseError);
}

TEST(ShardFormatTest, GarbageEntryCountIsTypedErrorNotBadAlloc) {
  const std::string path = temp_path("shard_huge.dksh");
  write_shard_file(path, sample_shard());
  std::string bytes = slurp(path);
  // entries u64 sits after magic(4) + 4 u32 header fields.
  const std::uint64_t huge = ~0ull;
  std::memcpy(bytes.data() + 4 + 4 * 4, &huge, sizeof(huge));
  spit(path, bytes);
  EXPECT_THROW(read_shard_file(path), ParseError);
}

TEST(ShardFormatTest, EveryFlippedByteFailsTypedOrRoundTrips) {
  // Fuzz-ish sweep: flipping any single byte must either raise ParseError
  // or leave a file that still parses (a count byte, say) — never crash,
  // never a non-typed exception.
  const std::string path = temp_path("shard_fuzz.dksh");
  write_shard_file(path, sample_shard());
  const std::string bytes = slurp(path);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    spit(path, mutated);
    try {
      (void)read_shard_file(path);
    } catch (const ParseError&) {
      // typed rejection is the expected outcome for most positions
    }
  }
}

TEST(ShardFormatTest, UnsortedKeysRejectedOnWriteAndRead) {
  EXPECT_THROW(
      make_shard({{5, 1}, {3, 1}}, 5, io::BaseEncoding::kStandard),
      PreconditionError);
  // Hand-craft sorted file, then swap two keys on disk.
  const std::string path = temp_path("shard_unsorted.dksh");
  write_shard_file(path, sample_shard());
  std::string bytes = slurp(path);
  const std::size_t keys_at =
      4 + 4 * 4 + 8 + (shard_fanout(5) + 1) * 8;  // header + index
  std::uint64_t k0 = 0, k1 = 0;
  std::memcpy(&k0, bytes.data() + keys_at, 8);
  std::memcpy(&k1, bytes.data() + keys_at + 8, 8);
  std::memcpy(bytes.data() + keys_at, &k1, 8);
  std::memcpy(bytes.data() + keys_at + 8, &k0, 8);
  spit(path, bytes);
  EXPECT_THROW(read_shard_file(path), ParseError);
}

TEST(ShardFormatTest, ZeroCountRejected) {
  EXPECT_THROW(make_shard({{1, 0}}, 5, io::BaseEncoding::kStandard),
               PreconditionError);
  const std::string path = temp_path("shard_zero.dksh");
  write_shard_file(path, sample_shard());
  std::string bytes = slurp(path);
  const std::uint64_t zero = 0;
  std::memcpy(bytes.data() + bytes.size() - 8, &zero, 8);  // last count
  spit(path, bytes);
  EXPECT_THROW(read_shard_file(path), ParseError);
}

TEST(ShardFormatTest, KeyWiderThanKRejected) {
  EXPECT_THROW(make_shard({{kmer::code_mask(5) + 1, 1}}, 5,
                          io::BaseEncoding::kStandard),
               PreconditionError);
}

Manifest sample_manifest(RoutingMode mode) {
  Manifest manifest;
  manifest.k = 17;
  manifest.encoding = io::BaseEncoding::kRandomized;
  switch (mode) {
    case RoutingMode::kKmerHash:
      manifest.routing = StoreRouting::kmer_hash(4, 17);
      break;
    case RoutingMode::kMinimizerHash:
      manifest.routing = StoreRouting::minimizer_hash(
          4, 17, 7, kmer::MinimizerOrder::kRandomized);
      break;
    case RoutingMode::kAssignmentTable: {
      std::vector<std::uint32_t> table(256);
      for (std::size_t b = 0; b < table.size(); ++b) {
        table[b] = static_cast<std::uint32_t>(b % 4);
      }
      manifest.routing = StoreRouting::assignment_table(
          std::move(table), 4, 17, 7, kmer::MinimizerOrder::kKmc2);
      break;
    }
  }
  manifest.shards = {{10, 100, 5000}, {0, 0, 72}, {3, 9, 400}, {7, 7, 900}};
  return manifest;
}

class ManifestRoundTripTest
    : public testing::TestWithParam<RoutingMode> {};

TEST_P(ManifestRoundTripTest, RoundTrip) {
  const Manifest original = sample_manifest(GetParam());
  const std::string path = temp_path("manifest_roundtrip.dksm");
  write_manifest_file(path, original);
  const Manifest loaded = read_manifest_file(path);
  EXPECT_EQ(loaded.k, original.k);
  EXPECT_EQ(loaded.encoding, original.encoding);
  EXPECT_EQ(loaded.routing.mode(), original.routing.mode());
  EXPECT_EQ(loaded.routing.shards(), original.routing.shards());
  EXPECT_EQ(loaded.routing.m(), original.routing.m());
  EXPECT_EQ(loaded.routing.order(), original.routing.order());
  EXPECT_EQ(loaded.routing.bucket_table(),
            original.routing.bucket_table());
  EXPECT_EQ(loaded.shards, original.shards);
  EXPECT_EQ(loaded.total_entries(), original.total_entries());
  EXPECT_EQ(loaded.total_count(), original.total_count());
}

INSTANTIATE_TEST_SUITE_P(AllRoutingModes, ManifestRoundTripTest,
                         testing::Values(RoutingMode::kKmerHash,
                                         RoutingMode::kMinimizerHash,
                                         RoutingMode::kAssignmentTable));

TEST(ManifestFormatTest, TruncationAtEveryOffsetRejected) {
  const std::string path = temp_path("manifest_truncated.dksm");
  write_manifest_file(path, sample_manifest(RoutingMode::kAssignmentTable));
  const std::string bytes = slurp(path);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    spit(path, bytes.substr(0, len));
    EXPECT_THROW(read_manifest_file(path), ParseError)
        << "at length " << len;
  }
}

TEST(ManifestFormatTest, TrailingBytesRejected) {
  const std::string path = temp_path("manifest_trailing.dksm");
  write_manifest_file(path, sample_manifest(RoutingMode::kKmerHash));
  spit(path, slurp(path) + std::string(1, '\0'));
  EXPECT_THROW(read_manifest_file(path), ParseError);
}

TEST(ManifestFormatTest, BadRoutingModeRejected) {
  const std::string path = temp_path("manifest_mode.dksm");
  write_manifest_file(path, sample_manifest(RoutingMode::kKmerHash));
  std::string bytes = slurp(path);
  const std::uint32_t bad = 99;
  std::memcpy(bytes.data() + 4 + 3 * 4, &bad, sizeof(bad));  // mode field
  spit(path, bytes);
  EXPECT_THROW(read_manifest_file(path), ParseError);
}

TEST(ManifestFormatTest, BucketTableEntryOutOfRangeRejected) {
  const std::string path = temp_path("manifest_bucket.dksm");
  write_manifest_file(path, sample_manifest(RoutingMode::kAssignmentTable));
  std::string bytes = slurp(path);
  const std::uint32_t bad = 4;  // == shards, one past the last valid rank
  std::memcpy(bytes.data() + 4 + 8 * 4, &bad, sizeof(bad));  // table[0]
  spit(path, bytes);
  EXPECT_THROW(read_manifest_file(path), ParseError);
}

TEST(ManifestFormatTest, ShardFilenamesAreFixedWidth) {
  EXPECT_EQ(shard_filename(0), "shard_0000.dksh");
  EXPECT_EQ(shard_filename(42), "shard_0042.dksh");
  EXPECT_EQ(shard_filename(10000), "shard_10000.dksh");
}

}  // namespace
}  // namespace dedukt::store
