// Distributed serving-tier tests: scatter/gather answers bit-identical to
// the single-rank engine (and the flat dump) at every rank count, frontend
// dedup as a pure traffic optimization, histogram invariance under rank
// partitioning and frequency-aware admission, the pipelined mode's strict
// modeled win, and pool-size determinism of the whole tier.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "dedukt/core/app.hpp"
#include "dedukt/core/driver.hpp"
#include "dedukt/core/store_export.hpp"
#include "dedukt/gpusim/device.hpp"
#include "dedukt/io/synthetic.hpp"
#include "dedukt/kmer/kmer.hpp"
#include "dedukt/store/distributed_query.hpp"
#include "dedukt/store/query.hpp"
#include "dedukt/store/store.hpp"
#include "dedukt/util/rng.hpp"
#include "dedukt/util/thread_pool.hpp"

namespace dedukt::store {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// One pipeline-built store shared by the whole battery (built once).
const std::string& pipeline_store_dir() {
  static const std::string dir = [] {
    io::GenomeSpec gspec;
    gspec.length = 8'000;
    gspec.seed = 31;
    io::ReadSpec rspec;
    rspec.coverage = 4.0;
    rspec.mean_read_length = 300;
    rspec.min_read_length = 80;
    const io::ReadBatch reads = io::generate_dataset(gspec, rspec);
    core::DriverOptions options;
    options.nranks = 6;
    const core::CountResult result =
        core::run_distributed_count(reads, options);
    const std::string path = fresh_dir("distributed_query_store");
    (void)core::write_store_from_result(path, result);
    return path;
  }();
  return dir;
}

/// Deterministic query stream: stored keys plus ~1/4 absent keys, with
/// plenty of repeats (Zipf-ish traffic is duplicate-heavy by nature).
std::vector<std::uint64_t> query_stream(const KmerStore& store,
                                        std::size_t n, std::uint64_t seed) {
  const auto flat = store.scan_all();
  std::map<std::uint64_t, std::uint64_t> present(flat.begin(), flat.end());
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  while (keys.size() < n) {
    if (rng.below(4) == 0) {
      std::uint64_t absent = rng.below(kmer::code_mask(store.k()) + 1);
      while (present.count(absent) != 0) ++absent;
      keys.push_back(absent);
    } else {
      // Draw from the head of the dump so repeats are common.
      keys.push_back(flat[rng.below(std::min<std::size_t>(
          flat.size(), 64))].first);
    }
  }
  return keys;
}

std::vector<std::vector<std::uint64_t>> split_batches(
    const std::vector<std::uint64_t>& keys, std::size_t batch) {
  std::vector<std::vector<std::uint64_t>> out;
  for (std::size_t begin = 0; begin < keys.size(); begin += batch) {
    const std::size_t len = std::min(batch, keys.size() - begin);
    out.emplace_back(keys.begin() + static_cast<std::ptrdiff_t>(begin),
                     keys.begin() + static_cast<std::ptrdiff_t>(begin + len));
  }
  return out;
}

TEST(DistributedQueryTest, OwnedShardsPartitionTheStore) {
  const KmerStore store = KmerStore::open(pipeline_store_dir());
  DistributedQueryConfig config;
  config.ranks = 4;
  DistributedQueryEngine engine(store, config);
  std::vector<bool> seen(store.shards(), false);
  for (int r = 0; r < 4; ++r) {
    for (const std::uint32_t s : engine.owned_shards(r)) {
      EXPECT_EQ(DistributedQueryEngine::owner_of(s, 4), r);
      EXPECT_FALSE(seen[s]);
      seen[s] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(DistributedQueryTest, BitIdenticalToSingleRankEngineAtEveryRankCount) {
  const KmerStore store = KmerStore::open(pipeline_store_dir());
  const auto flat = store.scan_all();
  const std::map<std::uint64_t, std::uint64_t> reference(flat.begin(),
                                                         flat.end());
  const std::vector<std::uint64_t> keys = query_stream(store, 1024, 0xABB0);
  const auto batches = split_batches(keys, 256);

  // Single-rank oracle, checked against the host map first.
  gpusim::Device device;
  QueryEngine oracle(store, device, {.cache_shards = store.shards()});
  std::vector<std::vector<std::uint64_t>> expected;
  for (const auto& b : batches) expected.push_back(oracle.lookup(b));
  for (std::size_t b = 0; b < batches.size(); ++b) {
    for (std::size_t i = 0; i < batches[b].size(); ++i) {
      const auto it = reference.find(batches[b][i]);
      ASSERT_EQ(expected[b][i], it == reference.end() ? 0u : it->second);
    }
  }
  const std::vector<std::uint8_t> expected_members = oracle.contains(keys);

  // 3 does not divide the shard count, 8 exceeds it (two empty ranks).
  for (const int ranks : {1, 2, 3, 4, 8}) {
    DistributedQueryConfig config;
    config.ranks = ranks;
    config.cache_shards =
        (store.shards() + static_cast<std::uint32_t>(ranks) - 1) /
        static_cast<std::uint32_t>(ranks);
    DistributedQueryEngine engine(store, config);
    EXPECT_EQ(engine.lookup_batches(batches), expected)
        << "ranks=" << ranks;
    EXPECT_EQ(engine.contains(keys), expected_members) << "ranks=" << ranks;
    EXPECT_EQ(engine.stats().queries, 2 * keys.size());
    EXPECT_GT(engine.stats().dedup_saved, 0u);
    if (ranks > 1) {
      EXPECT_GT(engine.stats().nic_bytes, 0u);
      EXPECT_GT(engine.stats().exchange_seconds, 0.0);
    } else {
      EXPECT_EQ(engine.stats().nic_bytes, 0u);
    }
    EXPECT_GT(engine.stats().serve_seconds, 0.0);
  }
}

TEST(DistributedQueryTest, HistogramInvariantAcrossRankCounts) {
  const KmerStore store = KmerStore::open(pipeline_store_dir());
  gpusim::Device device;
  QueryEngineConfig single_config;
  single_config.histogram_bins = 32;
  QueryEngine single(store, device, single_config);
  const std::vector<std::uint64_t> expected = single.histogram();

  std::vector<std::uint64_t> host(32, 0);
  for (const auto& [key, count] : store.scan_all()) {
    host[std::min<std::uint64_t>(count, 31)] += 1;
  }
  ASSERT_EQ(expected, host);

  for (const int ranks : {1, 2, 3, 5}) {
    DistributedQueryConfig config;
    config.ranks = ranks;
    config.histogram_bins = 32;
    DistributedQueryEngine engine(store, config);
    EXPECT_EQ(engine.histogram(), expected) << "ranks=" << ranks;
  }
}

TEST(DistributedQueryTest, HistogramUnderFreqAdmission) {
  // The bench_qps scan-thrash shape, distributed: warm a cache-sized hot
  // set on each rank, then run full-store histograms under frequency-aware
  // admission. The cold scan shards must be staged transiently (bypasses),
  // and the bins must stay bit-identical to the LRU tier and the host
  // spectrum — admission changes residency traffic, never results.
  const KmerStore store = KmerStore::open(pipeline_store_dir());
  std::vector<std::uint64_t> host(32, 0);
  for (const auto& [key, count] : store.scan_all()) {
    host[std::min<std::uint64_t>(count, 31)] += 1;
  }
  // Hot keys from shards 0 and 1 — under 2 ranks those are rank 0's and
  // rank 1's first owned shards, so each rank has a one-shard hot set
  // against a one-slot cache.
  std::vector<std::uint64_t> hot;
  for (const std::uint32_t s : {0u, 1u}) {
    const ShardFile& shard = store.shard(s);
    ASSERT_GT(shard.entries(), 0u);
    for (std::size_t i = 0; i < std::min<std::size_t>(shard.entries(), 64);
         ++i) {
      hot.push_back(shard.keys[i]);
    }
  }

  auto run = [&](bool freq) {
    DistributedQueryConfig config;
    config.ranks = 2;
    config.cache_shards = 1;
    config.histogram_bins = 32;
    config.freq_admission = freq;
    DistributedQueryEngine engine(store, config);
    std::vector<std::vector<std::uint64_t>> bins;
    for (int round = 0; round < 3; ++round) {
      (void)engine.lookup(hot);
      bins.push_back(engine.histogram());
    }
    std::uint64_t bypasses = 0;
    for (int r = 0; r < 2; ++r) {
      bypasses += engine.rank_stats(r).admission_bypasses;
    }
    return std::make_pair(bins, bypasses);
  };

  const auto [lru_bins, lru_bypasses] = run(false);
  const auto [freq_bins, freq_bypasses] = run(true);
  EXPECT_EQ(lru_bypasses, 0u);
  EXPECT_GT(freq_bypasses, 0u);
  EXPECT_EQ(freq_bins, lru_bins);
  for (const auto& bins : freq_bins) EXPECT_EQ(bins, host);
}

TEST(DistributedQueryTest, DedupRegression) {
  // A duplicate-heavy batch must probe like its distinct-key projection:
  // identical answers fanned back out, identical modeled device time, and
  // the dedup ledger accounting for every removed duplicate.
  const KmerStore store = KmerStore::open(pipeline_store_dir());
  const auto flat = store.scan_all();
  ASSERT_GE(flat.size(), 8u);

  std::vector<std::uint64_t> unique_keys;
  for (std::size_t i = 0; i < 8; ++i) unique_keys.push_back(flat[i].first);
  std::vector<std::uint64_t> dup_heavy;
  Xoshiro256 rng(0xD0B);
  for (std::size_t i = 0; i < 512; ++i) {
    dup_heavy.push_back(unique_keys[rng.below(unique_keys.size())]);
  }

  gpusim::Device device_a;
  QueryEngine dup_engine(store, device_a, {});
  const std::vector<std::uint64_t> dup_counts = dup_engine.lookup(dup_heavy);
  gpusim::Device device_b;
  QueryEngine unique_engine(store, device_b, {});
  const std::vector<std::uint64_t> unique_counts =
      unique_engine.lookup(unique_keys);

  // Answers fan out: every duplicate position carries its key's count.
  std::map<std::uint64_t, std::uint64_t> by_key;
  for (std::size_t i = 0; i < unique_keys.size(); ++i) {
    by_key[unique_keys[i]] = unique_counts[i];
  }
  for (std::size_t i = 0; i < dup_heavy.size(); ++i) {
    EXPECT_EQ(dup_counts[i], by_key.at(dup_heavy[i])) << "position " << i;
  }

  // The kernels never saw the duplicates: same probes, same modeled time
  // as the distinct projection (the duplicate-heavy batch hits the same
  // unique set in the same first-occurrence order only if we present it
  // that way, so compare against the engine's own ledger instead).
  EXPECT_EQ(dup_engine.stats().queries, dup_heavy.size());
  EXPECT_EQ(dup_engine.stats().dedup_saved,
            dup_heavy.size() - unique_keys.size());
  EXPECT_EQ(unique_engine.stats().dedup_saved, 0u);

  // And distributed: the tier's dedup ledger sees the same saving split
  // across frontend slices, with bit-identical answers.
  DistributedQueryConfig config;
  config.ranks = 2;
  DistributedQueryEngine tier(store, config);
  EXPECT_EQ(tier.lookup(dup_heavy), dup_counts);
  EXPECT_GT(tier.stats().dedup_saved, 0u);
  EXPECT_EQ(tier.stats().routed_queries + tier.stats().dedup_saved,
            dup_heavy.size());
}

TEST(DistributedQueryTest, OverlapStrictlyReducesModeledServeTime) {
  const KmerStore store = KmerStore::open(pipeline_store_dir());
  const std::vector<std::uint64_t> keys = query_stream(store, 1024, 0x0EE7);
  const auto batches = split_batches(keys, 256);
  ASSERT_GE(batches.size(), 2u);

  auto run = [&](bool overlap) {
    DistributedQueryConfig config;
    config.ranks = 3;
    config.cache_shards = 2;
    config.overlap_batches = overlap;
    DistributedQueryEngine engine(store, config);
    const auto answers = engine.lookup_batches(batches);
    return std::make_pair(answers, engine.stats());
  };

  const auto [lockstep_answers, lockstep] = run(false);
  const auto [overlap_answers, overlapped] = run(true);

  // Pipelining is a schedule change, never a result change.
  EXPECT_EQ(overlap_answers, lockstep_answers);
  EXPECT_EQ(lockstep.overlap_saved_seconds, 0.0);
  EXPECT_EQ(lockstep.serve_seconds, lockstep.lockstep_seconds);

  // Both exchange and lookups cost something here, so the overlapped
  // schedule must be strictly cheaper — by exactly the saved share.
  ASSERT_GT(overlapped.exchange_seconds, 0.0);
  ASSERT_GT(overlapped.lookup_seconds, 0.0);
  EXPECT_EQ(overlapped.lockstep_seconds, lockstep.serve_seconds);
  EXPECT_LT(overlapped.serve_seconds, overlapped.lockstep_seconds);
  EXPECT_GT(overlapped.overlap_saved_seconds, 0.0);
  EXPECT_DOUBLE_EQ(
      overlapped.lockstep_seconds - overlapped.serve_seconds,
      overlapped.overlap_saved_seconds);
}

TEST(DistributedQueryTest, DeterministicAcrossSimThreads) {
  const KmerStore store = KmerStore::open(pipeline_store_dir());
  const std::vector<std::uint64_t> keys = query_stream(store, 768, 0x51DE);
  const auto batches = split_batches(keys, 192);

  auto run_with_threads = [&](unsigned threads) {
    util::ThreadPool::set_global_threads(threads);
    DistributedQueryConfig config;
    config.ranks = 3;
    config.cache_shards = 2;
    config.overlap_batches = true;
    DistributedQueryEngine engine(store, config);
    const auto answers = engine.lookup_batches(batches);
    const auto histogram = engine.histogram();
    return std::make_tuple(answers, histogram, engine.stats());
  };

  const auto [answers1, histo1, stats1] = run_with_threads(1);
  const auto [answers4, histo4, stats4] = run_with_threads(4);
  util::ThreadPool::set_global_threads(0);  // restore default sizing

  EXPECT_EQ(answers1, answers4);
  EXPECT_EQ(histo1, histo4);
  EXPECT_EQ(stats1.queries, stats4.queries);
  EXPECT_EQ(stats1.found, stats4.found);
  EXPECT_EQ(stats1.dedup_saved, stats4.dedup_saved);
  EXPECT_EQ(stats1.routed_queries, stats4.routed_queries);
  EXPECT_EQ(stats1.nic_bytes, stats4.nic_bytes);
  // Bit-identical modeled time is the simulator's determinism contract.
  EXPECT_EQ(stats1.exchange_seconds, stats4.exchange_seconds);
  EXPECT_EQ(stats1.lookup_seconds, stats4.lookup_seconds);
  EXPECT_EQ(stats1.serve_seconds, stats4.serve_seconds);
  EXPECT_EQ(stats1.overlap_saved_seconds, stats4.overlap_saved_seconds);
}

// --- CLI integration: query --ranks / --overlap-batches / --json ---

struct AppResult {
  int exit_code;
  std::string out;
  std::string err;
};

AppResult run_cli(std::vector<std::string> args) {
  std::vector<const char*> argv = {"dedukt"};
  for (const auto& arg : args) argv.push_back(arg.c_str());
  std::ostringstream out, err;
  const int code = core::run_app(static_cast<int>(argv.size()), argv.data(),
                                 out, err);
  return {code, out.str(), err.str()};
}

/// A CLI-built store plus two stored k-mer strings to query for.
struct CliStore {
  std::string dir;
  std::string kmer0, kmer1;
  std::uint64_t count0 = 0, count1 = 0;
};

const CliStore& cli_store() {
  static const CliStore fixture = [] {
    CliStore f;
    f.dir = fresh_dir("distributed_cli_store");
    const AppResult count = run_cli(
        {"count", "--synthetic=ecoli30x", "--scale=4000", "--ranks=4",
         "--store-out=" + f.dir});
    EXPECT_EQ(count.exit_code, 0) << count.err;
    const KmerStore store = KmerStore::open(f.dir);
    EXPECT_GE(store.scan_all().size(), 2u);
    const auto [key0, count0] = store.scan_all().front();
    const auto [key1, count1] = store.scan_all().back();
    f.kmer0 = kmer::unpack(key0, store.k(), store.encoding());
    f.kmer1 = kmer::unpack(key1, store.k(), store.encoding());
    f.count0 = count0;
    f.count1 = count1;
    return f;
  }();
  return fixture;
}

TEST(DistributedQueryCliTest, RanksFlagAnswersLikeSingleRank) {
  const CliStore& f = cli_store();
  const std::string kmers = f.kmer0 + "," + f.kmer1 + "," + f.kmer0;
  const AppResult single =
      run_cli({"query", "--store=" + f.dir, "--kmers=" + kmers});
  ASSERT_EQ(single.exit_code, 0) << single.err;
  const AppResult tiered = run_cli(
      {"query", "--store=" + f.dir, "--kmers=" + kmers, "--ranks=3"});
  ASSERT_EQ(tiered.exit_code, 0) << tiered.err;

  // Identical per-kmer answer lines (the summary lines differ).
  const std::string line0 = f.kmer0 + "\t" + std::to_string(f.count0);
  const std::string line1 = f.kmer1 + "\t" + std::to_string(f.count1);
  for (const AppResult* r : {&single, &tiered}) {
    EXPECT_NE(r->out.find(line0), std::string::npos) << r->out;
    EXPECT_NE(r->out.find(line1), std::string::npos) << r->out;
  }
  EXPECT_NE(tiered.out.find("3 ranks"), std::string::npos) << tiered.out;
}

TEST(DistributedQueryCliTest, OverlapBatchesRequiresDistributedTier) {
  const CliStore& f = cli_store();
  const AppResult bad = run_cli({"query", "--store=" + f.dir,
                                 "--kmers=" + f.kmer0, "--overlap-batches"});
  EXPECT_NE(bad.exit_code, 0);
  EXPECT_NE(bad.err.find("--ranks"), std::string::npos) << bad.err;

  const AppResult good =
      run_cli({"query", "--store=" + f.dir,
               "--kmers=" + f.kmer0 + "," + f.kmer1, "--ranks=2",
               "--batch=1", "--overlap-batches"});
  ASSERT_EQ(good.exit_code, 0) << good.err;
  EXPECT_NE(good.out.find(f.kmer0 + "\t" + std::to_string(f.count0)),
            std::string::npos);
}

TEST(DistributedQueryCliTest, JsonStatsReportTheServeSurface) {
  const CliStore& f = cli_store();
  const AppResult result = run_cli(
      {"query", "--store=" + f.dir,
       "--kmers=" + f.kmer0 + "," + f.kmer1 + "," + f.kmer0, "--ranks=2",
       "--json"});
  ASSERT_EQ(result.exit_code, 0) << result.err;

  const std::string& json = result.out;
  EXPECT_NE(json.find("\"queries\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ranks\": 2"), std::string::npos) << json;
  for (const char* key :
       {"\"found\"", "\"dedup_saved\"", "\"cache_hits\"", "\"cache_misses\"",
        "\"admission_bypasses\"", "\"staged_bytes\"", "\"routed_queries\"",
        "\"nic_bytes\"", "\"lookup_seconds\"", "\"exchange_seconds\"",
        "\"serve_seconds\"", "\"results\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(json.find("\"kmer\": \"" + f.kmer0 + "\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": " + std::to_string(f.count0)),
            std::string::npos);
}

}  // namespace
}  // namespace dedukt::store
