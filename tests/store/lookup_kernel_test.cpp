// Direct tests of the priced gpusim lookup kernels: results against a host
// linear scan, and charge/modeled-time invariance across pool sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dedukt/gpusim/device.hpp"
#include "dedukt/gpusim/lookup.hpp"
#include "dedukt/kmer/kmer.hpp"
#include "dedukt/store/shard.hpp"
#include "dedukt/util/rng.hpp"
#include "dedukt/util/thread_pool.hpp"

namespace dedukt::gpusim {
namespace {

/// Device-resident copy of a shard, exposing a SortedTableView.
struct DeviceTable {
  DeviceTable(Device& device, const store::ShardFile& shard)
      : device_(device),
        keys_(device.alloc<std::uint64_t>(std::max<std::size_t>(
            shard.entries(), 1))),
        values_(device.alloc<std::uint64_t>(std::max<std::size_t>(
            shard.entries(), 1))),
        offsets_(device.alloc<std::uint64_t>(shard.index.size())) {
    if (shard.entries() > 0) {
      device.copy_to_device<std::uint64_t>(shard.keys, keys_);
      device.copy_to_device<std::uint64_t>(shard.counts, values_);
    }
    device.copy_to_device<std::uint64_t>(shard.index, offsets_);
    view_.keys = &keys_;
    view_.values = &values_;
    view_.offsets = &offsets_;
    view_.entries = shard.entries();
    view_.fanout = store::shard_fanout(shard.k);
    view_.prefix_shift = store::shard_prefix_shift(shard.k);
  }
  ~DeviceTable() {
    device_.free(keys_);
    device_.free(values_);
    device_.free(offsets_);
  }

  Device& device_;
  DeviceBuffer<std::uint64_t> keys_, values_, offsets_;
  SortedTableView view_;
};

store::ShardFile sample_shard(int k, std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> keys;
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(rng.below(kmer::code_mask(k) + 1));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  for (const std::uint64_t key : keys) {
    entries.emplace_back(key, (key % 61) + 1);
  }
  return store::make_shard(entries, k, io::BaseEncoding::kStandard);
}

std::vector<std::uint64_t> mixed_queries(const store::ShardFile& shard,
                                         std::size_t n,
                                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> queries;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.below(2) == 0 && !shard.keys.empty()) {
      queries.push_back(shard.keys[rng.below(shard.keys.size())]);
    } else {
      queries.push_back(rng.below(kmer::code_mask(shard.k) + 1));
    }
  }
  return queries;
}

TEST(LookupKernelTest, LookupMatchesHostLinearScan) {
  const store::ShardFile shard = sample_shard(11, 4000, 0x11);
  Device device;
  DeviceTable table(device, shard);
  const std::vector<std::uint64_t> queries = mixed_queries(shard, 2000, 0x22);

  auto d_queries = device.alloc<std::uint64_t>(queries.size());
  device.copy_to_device<std::uint64_t>(queries, d_queries);
  auto d_out = device.alloc<std::uint64_t>(queries.size());
  const LaunchStats stats =
      lookup_sorted(device, table.view_, d_queries, queries.size(), d_out);
  std::vector<std::uint64_t> out(queries.size());
  device.copy_to_host<std::uint64_t>(d_out, out);
  device.free(d_queries);
  device.free(d_out);

  for (std::size_t i = 0; i < queries.size(); ++i) {
    std::uint64_t expected = 0;
    const auto it = std::lower_bound(shard.keys.begin(), shard.keys.end(),
                                     queries[i]);
    if (it != shard.keys.end() && *it == queries[i]) {
      expected = shard.counts[static_cast<std::size_t>(
          it - shard.keys.begin())];
    }
    ASSERT_EQ(out[i], expected) << "query " << i;
  }
  EXPECT_GE(stats.counters.threads, queries.size());  // grid is block-padded
  EXPECT_GT(stats.counters.gmem_read_bytes, 0u);
  EXPECT_EQ(stats.counters.gmem_write_bytes, queries.size() * 8);
  EXPECT_EQ(stats.counters.atomics, 0u);
  EXPECT_GT(stats.modeled_seconds, 0.0);
}

TEST(LookupKernelTest, MemberMatchesLookup) {
  const store::ShardFile shard = sample_shard(9, 1500, 0x33);
  Device device;
  DeviceTable table(device, shard);
  const std::vector<std::uint64_t> queries = mixed_queries(shard, 800, 0x44);

  auto d_queries = device.alloc<std::uint64_t>(queries.size());
  device.copy_to_device<std::uint64_t>(queries, d_queries);
  auto d_values = device.alloc<std::uint64_t>(queries.size());
  auto d_member = device.alloc<std::uint8_t>(queries.size());
  (void)lookup_sorted(device, table.view_, d_queries, queries.size(),
                      d_values);
  const LaunchStats stats =
      member_sorted(device, table.view_, d_queries, queries.size(), d_member);
  std::vector<std::uint64_t> values(queries.size());
  std::vector<std::uint8_t> member(queries.size());
  device.copy_to_host<std::uint64_t>(d_values, values);
  device.copy_to_host<std::uint8_t>(d_member, member);
  device.free(d_queries);
  device.free(d_values);
  device.free(d_member);

  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(member[i], values[i] != 0 ? 1 : 0);
  }
  EXPECT_EQ(stats.counters.gmem_write_bytes, queries.size() * 1);
}

TEST(LookupKernelTest, EmptyTableFindsNothing) {
  const store::ShardFile shard =
      store::make_shard({}, 7, io::BaseEncoding::kStandard);
  Device device;
  DeviceTable table(device, shard);
  const std::vector<std::uint64_t> queries = {0, 1, 42};
  auto d_queries = device.alloc<std::uint64_t>(queries.size());
  device.copy_to_device<std::uint64_t>(queries, d_queries);
  auto d_out = device.alloc<std::uint64_t>(queries.size(), 7u);
  (void)lookup_sorted(device, table.view_, d_queries, queries.size(), d_out);
  std::vector<std::uint64_t> out(queries.size());
  device.copy_to_host<std::uint64_t>(d_out, out);
  device.free(d_queries);
  device.free(d_out);
  for (const std::uint64_t v : out) EXPECT_EQ(v, 0u);
}

TEST(LookupKernelTest, HistogramMatchesHostAndCapsLastBin) {
  const store::ShardFile shard = sample_shard(13, 6000, 0x55);
  Device device;
  const std::size_t nbins = 32;

  auto d_values = device.alloc<std::uint64_t>(shard.counts.size());
  device.copy_to_device<std::uint64_t>(shard.counts, d_values);
  auto d_bins = device.alloc<std::uint64_t>(nbins, 0u);
  const LaunchStats stats =
      value_histogram(device, d_values, shard.counts.size(), nbins, d_bins);
  std::vector<std::uint64_t> bins(nbins);
  device.copy_to_host<std::uint64_t>(d_bins, bins);
  device.free(d_values);
  device.free(d_bins);

  std::vector<std::uint64_t> expected(nbins, 0);
  for (const std::uint64_t count : shard.counts) {
    expected[std::min<std::uint64_t>(count, nbins - 1)] += 1;
  }
  EXPECT_EQ(bins, expected);
  // Block-local aggregation: global atomics bounded by blocks * nbins,
  // far below one per value.
  EXPECT_LT(stats.counters.atomics, shard.counts.size());
  EXPECT_GT(stats.counters.smem_atomics, 0u);
}

TEST(LookupKernelTest, ChargesInvariantAcrossSimThreads) {
  const store::ShardFile shard = sample_shard(11, 3000, 0x66);
  const std::vector<std::uint64_t> queries = mixed_queries(shard, 1024, 0x77);

  auto run = [&](unsigned threads) {
    util::ThreadPool::set_global_threads(threads);
    Device device;
    DeviceTable table(device, shard);
    auto d_queries = device.alloc<std::uint64_t>(queries.size());
    device.copy_to_device<std::uint64_t>(queries, d_queries);
    auto d_out = device.alloc<std::uint64_t>(queries.size());
    auto d_bins = device.alloc<std::uint64_t>(16, 0u);
    const LaunchStats lookup = lookup_sorted(device, table.view_, d_queries,
                                             queries.size(), d_out);
    const LaunchStats histo = value_histogram(
        device, table.values_, shard.counts.size(), 16, d_bins);
    device.free(d_queries);
    device.free(d_out);
    device.free(d_bins);
    return std::make_pair(lookup, histo);
  };

  const auto [lookup1, histo1] = run(1);
  const auto [lookup4, histo4] = run(4);
  util::ThreadPool::set_global_threads(0);

  EXPECT_EQ(lookup1.counters.gmem_read_bytes, lookup4.counters.gmem_read_bytes);
  EXPECT_EQ(lookup1.counters.gmem_write_bytes,
            lookup4.counters.gmem_write_bytes);
  EXPECT_EQ(lookup1.counters.ops, lookup4.counters.ops);
  EXPECT_EQ(lookup1.modeled_seconds, lookup4.modeled_seconds);
  EXPECT_EQ(histo1.counters.atomics, histo4.counters.atomics);
  EXPECT_EQ(histo1.counters.smem_atomics, histo4.counters.smem_atomics);
  EXPECT_EQ(histo1.counters.smem_read_bytes, histo4.counters.smem_read_bytes);
  EXPECT_EQ(histo1.modeled_seconds, histo4.modeled_seconds);
}

}  // namespace
}  // namespace dedukt::gpusim
