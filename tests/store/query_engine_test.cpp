// QueryEngine tests: query results bit-identical to a linear scan of the
// flat dump, LRU hit/miss accounting (deterministic across pool sizes),
// and the modeled win of hot-shard caching on skewed traffic.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "dedukt/core/driver.hpp"
#include "dedukt/core/store_export.hpp"
#include "dedukt/gpusim/device.hpp"
#include "dedukt/io/synthetic.hpp"
#include "dedukt/store/query.hpp"
#include "dedukt/store/store.hpp"
#include "dedukt/util/rng.hpp"
#include "dedukt/util/thread_pool.hpp"

namespace dedukt::store {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// One pipeline-built store shared by the whole battery (built once).
const std::string& pipeline_store_dir() {
  static const std::string dir = [] {
    io::GenomeSpec gspec;
    gspec.length = 8'000;
    gspec.seed = 29;
    io::ReadSpec rspec;
    rspec.coverage = 4.0;
    rspec.mean_read_length = 300;
    rspec.min_read_length = 80;
    const io::ReadBatch reads = io::generate_dataset(gspec, rspec);
    core::DriverOptions options;
    options.nranks = 6;
    const core::CountResult result =
        core::run_distributed_count(reads, options);
    const std::string path = fresh_dir("query_engine_store");
    (void)core::write_store_from_result(path, result);
    return path;
  }();
  return dir;
}

/// Deterministic query stream: stored keys plus ~1/4 absent keys.
std::vector<std::uint64_t> query_stream(const KmerStore& store,
                                        std::size_t n, std::uint64_t seed) {
  const auto flat = store.scan_all();
  std::map<std::uint64_t, std::uint64_t> present(flat.begin(), flat.end());
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  while (keys.size() < n) {
    if (rng.below(4) == 0) {
      std::uint64_t absent = rng.below(kmer::code_mask(store.k()) + 1);
      while (present.count(absent) != 0) ++absent;
      keys.push_back(absent);
    } else {
      keys.push_back(flat[rng.below(flat.size())].first);
    }
  }
  return keys;
}

TEST(QueryEngineTest, LookupBitIdenticalToLinearScan) {
  const KmerStore store = KmerStore::open(pipeline_store_dir());
  const auto flat = store.scan_all();
  const std::map<std::uint64_t, std::uint64_t> reference(flat.begin(),
                                                         flat.end());
  gpusim::Device device;
  QueryEngine engine(store, device, {.cache_shards = 3});

  const std::vector<std::uint64_t> keys = query_stream(store, 2048, 0xFEED);
  const std::vector<std::uint64_t> counts = engine.lookup(keys);
  ASSERT_EQ(counts.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto it = reference.find(keys[i]);
    EXPECT_EQ(counts[i], it == reference.end() ? 0u : it->second)
        << "key index " << i;
  }
  EXPECT_EQ(engine.stats().queries, keys.size());
  EXPECT_GT(engine.stats().found, 0u);
  EXPECT_GT(engine.stats().modeled_seconds, 0.0);
}

TEST(QueryEngineTest, ContainsMatchesLookup) {
  const KmerStore store = KmerStore::open(pipeline_store_dir());
  gpusim::Device device;
  QueryEngine engine(store, device);
  const std::vector<std::uint64_t> keys = query_stream(store, 512, 0xD00D);
  const std::vector<std::uint64_t> counts = engine.lookup(keys);
  const std::vector<std::uint8_t> members = engine.contains(keys);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(members[i], counts[i] != 0 ? 1 : 0);
  }
}

TEST(QueryEngineTest, HistogramMatchesHostSpectrum) {
  const KmerStore store = KmerStore::open(pipeline_store_dir());
  gpusim::Device device;
  QueryEngineConfig config;
  config.histogram_bins = 16;
  QueryEngine engine(store, device, config);
  const std::vector<std::uint64_t> bins = engine.histogram();
  ASSERT_EQ(bins.size(), 16u);

  std::vector<std::uint64_t> expected(16, 0);
  for (const auto& [key, count] : store.scan_all()) {
    expected[std::min<std::uint64_t>(count, 15)] += 1;
  }
  EXPECT_EQ(bins, expected);
  EXPECT_EQ(bins[0], 0u);  // no zero counts in a store
}

TEST(QueryEngineTest, UncachedModeReleasesEveryShard) {
  const KmerStore store = KmerStore::open(pipeline_store_dir());
  gpusim::Device device;
  const std::uint64_t before = device.allocated_bytes();
  QueryEngine engine(store, device, {.cache_shards = 0});
  const std::vector<std::uint64_t> keys = query_stream(store, 256, 0xBEEF);
  (void)engine.lookup(keys);
  EXPECT_EQ(engine.resident_shards(), 0u);
  EXPECT_EQ(device.allocated_bytes(), before);
  // Without a cache every touched shard is a miss, every batch.
  EXPECT_EQ(engine.stats().cache_hits, 0u);
  EXPECT_GT(engine.stats().cache_misses, 0u);
}

TEST(QueryEngineTest, LruEvictsLeastRecentlyTouchedShard) {
  // Hand-built store with 4 tiny shards so touch order is controllable:
  // kmer-hash routing, keys picked to land one per shard.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> counts;
  const StoreRouting routing = StoreRouting::kmer_hash(4, 17);
  std::vector<std::uint64_t> probe_key(4, 0);
  std::uint64_t key = 1;
  for (std::uint32_t want = 0; want < 4; ++want) {
    while (routing.shard_of(key) != want) ++key;
    probe_key[want] = key;
    counts.emplace_back(key, want + 1);
    ++key;
  }
  std::sort(counts.begin(), counts.end());
  const std::string dir = fresh_dir("query_lru");
  (void)write_store(dir, counts, io::BaseEncoding::kRandomized, routing);
  const KmerStore store = KmerStore::open(dir);

  gpusim::Device device;
  QueryEngine engine(store, device, {.cache_shards = 2});
  auto touch = [&](std::uint32_t shard) {
    const std::vector<std::uint64_t> one = {probe_key[shard]};
    (void)engine.lookup(one);
  };

  touch(0);  // resident: {0}
  touch(1);  // resident: {0, 1}
  EXPECT_EQ(engine.stats().cache_misses, 2u);
  EXPECT_EQ(engine.stats().evictions, 0u);
  touch(2);  // evicts 0 (least recently touched) -> {1, 2}
  EXPECT_EQ(engine.stats().evictions, 1u);
  touch(1);  // hit -> 1 is now newest
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  touch(3);  // evicts 2, not 1 -> {1, 3}
  EXPECT_EQ(engine.stats().evictions, 2u);
  touch(1);  // still resident: hit
  EXPECT_EQ(engine.stats().cache_hits, 2u);
  touch(0);  // 0 was evicted: miss again
  EXPECT_EQ(engine.stats().cache_misses, 5u);
  EXPECT_EQ(engine.resident_shards(), 2u);
}

TEST(QueryEngineTest, StatsAndModeledTimesIdenticalAcrossSimThreads) {
  const KmerStore store = KmerStore::open(pipeline_store_dir());
  const std::vector<std::uint64_t> keys =
      query_stream(store, 1024, 0x5EED);

  auto run_with_threads = [&](unsigned threads) {
    util::ThreadPool::set_global_threads(threads);
    gpusim::Device device;
    QueryEngine engine(store, device, {.cache_shards = 2});
    std::vector<std::uint64_t> counts;
    for (std::size_t begin = 0; begin < keys.size(); begin += 256) {
      const std::size_t len = std::min<std::size_t>(256, keys.size() - begin);
      const std::vector<std::uint64_t> batch(
          keys.begin() + static_cast<std::ptrdiff_t>(begin),
          keys.begin() + static_cast<std::ptrdiff_t>(begin + len));
      const std::vector<std::uint64_t> result = engine.lookup(batch);
      counts.insert(counts.end(), result.begin(), result.end());
    }
    (void)engine.histogram();
    return std::make_pair(counts, engine.stats());
  };

  const auto [counts1, stats1] = run_with_threads(1);
  const auto [counts4, stats4] = run_with_threads(4);
  util::ThreadPool::set_global_threads(0);  // restore default sizing

  EXPECT_EQ(counts1, counts4);
  EXPECT_EQ(stats1.batches, stats4.batches);
  EXPECT_EQ(stats1.queries, stats4.queries);
  EXPECT_EQ(stats1.found, stats4.found);
  EXPECT_EQ(stats1.cache_hits, stats4.cache_hits);
  EXPECT_EQ(stats1.cache_misses, stats4.cache_misses);
  EXPECT_EQ(stats1.evictions, stats4.evictions);
  EXPECT_EQ(stats1.staged_bytes, stats4.staged_bytes);
  // Bit-identical modeled time is the simulator's determinism contract.
  EXPECT_EQ(stats1.modeled_seconds, stats4.modeled_seconds);
  EXPECT_EQ(stats1.transfer_seconds, stats4.transfer_seconds);
}

TEST(QueryEngineTest, CachingWinsOnSkewedTraffic) {
  const KmerStore store = KmerStore::open(pipeline_store_dir());
  // Skewed stream: nearly all queries hit the keys of one hot shard.
  const ShardFile& hot = store.shard(0);
  ASSERT_GT(hot.entries(), 0u);
  Xoshiro256 rng(0x0DD);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 1024; ++i) {
    keys.push_back(hot.keys[rng.below(hot.entries())]);
  }

  auto total_modeled = [&](std::uint32_t cache_shards) {
    gpusim::Device device;
    QueryEngine engine(store, device, {.cache_shards = cache_shards});
    for (std::size_t begin = 0; begin < keys.size(); begin += 128) {
      const std::vector<std::uint64_t> batch(
          keys.begin() + static_cast<std::ptrdiff_t>(begin),
          keys.begin() + static_cast<std::ptrdiff_t>(begin + 128));
      (void)engine.lookup(batch);
    }
    return engine.stats().modeled_seconds;
  };

  const double uncached = total_modeled(0);
  const double cached = total_modeled(2);
  // 8 batches at one shard: uncached stages the shard 8 times, cached
  // stages once — the modeled win must be strict.
  EXPECT_LT(cached, uncached);
}

TEST(QueryEngineTest, FullScanThrashesHalfSizeLruCache) {
  // Regression for the bench_qps scan-thrash: a hot working set that fits
  // the cache, interleaved with full-store histogram scans at cache_shards
  // = shards/2. Plain LRU lets every scan flush the hot set (each cold
  // shard evicts a hot one), so the hot queries that follow miss again;
  // frequency-aware admission stages the cold scan shards transiently and
  // must strictly beat LRU on misses, staged bytes and modeled time.
  const KmerStore store = KmerStore::open(pipeline_store_dir());
  const std::uint32_t cache = store.shards() / 2;
  ASSERT_GE(cache, 2u);

  // Hot keys drawn from the first `cache` shards only, so the hot set is
  // exactly cache-sized.
  Xoshiro256 rng(0xCAFE);
  std::vector<std::uint64_t> hot_keys;
  for (int i = 0; i < 256; ++i) {
    const ShardFile& shard = store.shard(
        static_cast<std::uint32_t>(rng.below(cache)));
    ASSERT_GT(shard.entries(), 0u);
    hot_keys.push_back(shard.keys[rng.below(shard.entries())]);
  }

  auto run_workload = [&](bool freq_admission) {
    gpusim::Device device;
    QueryEngineConfig config;
    config.cache_shards = cache;
    config.freq_admission = freq_admission;
    QueryEngine engine(store, device, config);
    std::vector<std::uint64_t> results;
    // Warm the hot set (and its touch counts), then alternate full scans
    // with hot batches — the thrash pattern.
    for (int round = 0; round < 4; ++round) {
      const std::vector<std::uint64_t> counts = engine.lookup(hot_keys);
      results.insert(results.end(), counts.begin(), counts.end());
      (void)engine.histogram();
    }
    const std::vector<std::uint64_t> counts = engine.lookup(hot_keys);
    results.insert(results.end(), counts.begin(), counts.end());
    return std::make_pair(results, engine.stats());
  };

  const auto [lru_results, lru] = run_workload(false);
  const auto [freq_results, freq] = run_workload(true);

  // The policy changes residency traffic, never answers.
  EXPECT_EQ(freq_results, lru_results);
  EXPECT_EQ(lru.admission_bypasses, 0u);
  EXPECT_GT(freq.admission_bypasses, 0u);
  EXPECT_LT(freq.cache_misses, lru.cache_misses);
  EXPECT_LT(freq.staged_bytes, lru.staged_bytes);
  EXPECT_LT(freq.modeled_seconds, lru.modeled_seconds);
}

TEST(QueryEngineTest, FreqAdmissionDeterministicAcrossSimThreads) {
  const KmerStore store = KmerStore::open(pipeline_store_dir());
  const std::vector<std::uint64_t> keys =
      query_stream(store, 1024, 0xFADE);
  auto run_with_threads = [&](unsigned threads) {
    util::ThreadPool::set_global_threads(threads);
    gpusim::Device device;
    QueryEngineConfig config;
    config.cache_shards = 2;
    config.freq_admission = true;
    QueryEngine engine(store, device, config);
    for (std::size_t begin = 0; begin < keys.size(); begin += 128) {
      const std::vector<std::uint64_t> batch(
          keys.begin() + static_cast<std::ptrdiff_t>(begin),
          keys.begin() + static_cast<std::ptrdiff_t>(begin + 128));
      (void)engine.lookup(batch);
    }
    (void)engine.histogram();
    return engine.stats();
  };
  const QueryStats stats1 = run_with_threads(1);
  const QueryStats stats4 = run_with_threads(4);
  util::ThreadPool::set_global_threads(0);  // restore default sizing
  EXPECT_EQ(stats1.cache_hits, stats4.cache_hits);
  EXPECT_EQ(stats1.cache_misses, stats4.cache_misses);
  EXPECT_EQ(stats1.evictions, stats4.evictions);
  EXPECT_EQ(stats1.admission_bypasses, stats4.admission_bypasses);
  EXPECT_EQ(stats1.staged_bytes, stats4.staged_bytes);
  EXPECT_EQ(stats1.modeled_seconds, stats4.modeled_seconds);
}

}  // namespace
}  // namespace dedukt::store
