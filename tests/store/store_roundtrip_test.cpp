// Store round-trip and routing-agreement tests: shard routing must replay
// the counting pipelines' destination logic exactly, and a store written
// from a run must merge back bit-identical to the flat counts_io dump.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "dedukt/core/app.hpp"
#include "dedukt/core/counts_io.hpp"
#include "dedukt/core/driver.hpp"
#include "dedukt/core/partitioner.hpp"
#include "dedukt/core/store_export.hpp"
#include "dedukt/io/synthetic.hpp"
#include "dedukt/kmer/minimizer.hpp"
#include "dedukt/store/store.hpp"
#include "dedukt/util/error.hpp"
#include "dedukt/util/rng.hpp"

namespace dedukt::store {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::uint64_t> random_keys(int k, std::size_t n,
                                       std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(rng.below(kmer::code_mask(k) + 1));
  }
  return keys;
}

io::ReadBatch small_dataset() {
  io::GenomeSpec gspec;
  gspec.length = 5'000;
  gspec.seed = 13;
  io::ReadSpec rspec;
  rspec.coverage = 3.0;
  rspec.mean_read_length = 400;
  rspec.min_read_length = 80;
  return io::generate_dataset(gspec, rspec);
}

TEST(StoreRoutingTest, KmerHashMatchesPipelinePartition) {
  const StoreRouting routing = StoreRouting::kmer_hash(6, 17);
  for (const std::uint64_t key : random_keys(17, 2000, 0xA11CE)) {
    EXPECT_EQ(routing.shard_of(key), kmer::kmer_partition(key, 6));
  }
}

TEST(StoreRoutingTest, MinimizerHashMatchesPipelinePartition) {
  const StoreRouting routing = StoreRouting::minimizer_hash(
      8, 17, 7, kmer::MinimizerOrder::kRandomized);
  const kmer::MinimizerPolicy policy(kmer::MinimizerOrder::kRandomized, 7);
  for (const std::uint64_t key : random_keys(17, 2000, 0xB0B)) {
    const kmer::KmerCode minimizer = kmer::minimizer_of(key, 17, policy);
    EXPECT_EQ(routing.shard_of(key),
              kmer::minimizer_partition(minimizer, 8));
  }
}

TEST(StoreRoutingTest, AssignmentTableAgreesWithMinimizerAssignment) {
  // An explicit bucket table, same shape MinimizerAssignment::build
  // produces (kBucketsPerRank buckets per rank), deliberately uneven.
  const std::uint32_t nranks = 4;
  const std::uint32_t nbuckets =
      nranks * core::MinimizerAssignment::kBucketsPerRank;
  Xoshiro256 rng(7);
  std::vector<std::uint32_t> table(nbuckets);
  for (auto& rank : table) {
    rank = static_cast<std::uint32_t>(rng.below(nranks));
  }
  const core::MinimizerAssignment assignment(table, nranks);
  const StoreRouting routing = StoreRouting::assignment_table(
      table, nranks, 17, 7, kmer::MinimizerOrder::kRandomized);
  const kmer::MinimizerPolicy policy(kmer::MinimizerOrder::kRandomized, 7);
  for (const std::uint64_t key : random_keys(17, 2000, 0xCAFE)) {
    const kmer::KmerCode minimizer = kmer::minimizer_of(key, 17, policy);
    EXPECT_EQ(routing.shard_of(key), assignment.rank_of(minimizer));
  }
}

TEST(StoreRoundTripTest, WriteThenScanRestoresFlatDump) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> counts;
  std::uint64_t key = 3;
  for (int i = 0; i < 500; ++i, key += 17 + (key % 5)) {
    counts.emplace_back(key & kmer::code_mask(17), (key % 90) + 1);
  }
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               counts.end());

  const std::string dir = fresh_dir("store_roundtrip");
  const StoreRouting routing = StoreRouting::minimizer_hash(
      5, 17, 7, kmer::MinimizerOrder::kRandomized);
  const Manifest manifest = write_store(
      dir, counts, io::BaseEncoding::kRandomized, routing);
  EXPECT_EQ(manifest.total_entries(), counts.size());

  const KmerStore store = KmerStore::open(dir);
  EXPECT_EQ(store.scan_all(), counts);
  // Every key sits in the shard its routing says, and nowhere else.
  for (std::uint32_t s = 0; s < store.shards(); ++s) {
    for (const std::uint64_t k : store.shard(s).keys) {
      EXPECT_EQ(routing.shard_of(k), s);
    }
  }
}

TEST(StoreRoundTripTest, UnsortedInputRejected) {
  const std::string dir = fresh_dir("store_unsorted");
  const StoreRouting routing = StoreRouting::kmer_hash(2, 5);
  EXPECT_THROW(write_store(dir, {{9, 1}, {3, 1}},
                           io::BaseEncoding::kStandard, routing),
               PreconditionError);
}

TEST(StoreRoundTripTest, PipelineRunMatchesFlatDumpBitIdentical) {
  core::DriverOptions options;
  options.nranks = 4;
  const core::CountResult result =
      core::run_distributed_count(small_dataset(), options);
  ASSERT_FALSE(result.global_counts.empty());

  const std::string dir = fresh_dir("store_pipeline");
  const Manifest manifest = core::write_store_from_result(dir, result);
  EXPECT_EQ(manifest.routing.mode(), RoutingMode::kMinimizerHash);
  EXPECT_EQ(manifest.routing.shards(), 4u);

  const KmerStore store = KmerStore::open(dir);
  EXPECT_EQ(store.scan_all(), result.global_counts);
  EXPECT_EQ(store.manifest().total_count(),
            result.totals().counted_kmers);
}

TEST(StoreRoundTripTest, KmerPipelineUsesKmerHashRouting) {
  core::DriverOptions options;
  options.nranks = 3;
  options.pipeline.kind = core::PipelineKind::kGpuKmer;
  const core::CountResult result =
      core::run_distributed_count(small_dataset(), options);

  const std::string dir = fresh_dir("store_kmer_pipeline");
  const Manifest manifest = core::write_store_from_result(dir, result);
  EXPECT_EQ(manifest.routing.mode(), RoutingMode::kKmerHash);
  const KmerStore store = KmerStore::open(dir);
  EXPECT_EQ(store.scan_all(), result.global_counts);
  for (std::uint32_t s = 0; s < store.shards(); ++s) {
    for (const std::uint64_t key : store.shard(s).keys) {
      EXPECT_EQ(kmer::kmer_partition(key, 3), s);
    }
  }
}

// --- CLI integration: --store-out and the query subcommand ---

struct AppResult {
  int exit_code;
  std::string out;
  std::string err;
};

AppResult run_cli(std::vector<std::string> args) {
  std::vector<const char*> argv = {"dedukt"};
  for (const auto& arg : args) argv.push_back(arg.c_str());
  std::ostringstream out, err;
  const int code = core::run_app(static_cast<int>(argv.size()), argv.data(),
                                 out, err);
  return {code, out.str(), err.str()};
}

TEST(StoreCliTest, StoreOutBitIdenticalToFlatDump) {
  const std::string dir = fresh_dir("store_cli");
  const std::string counts_path = testing::TempDir() + "/store_cli.bin";
  const AppResult result = run_cli(
      {"count", "--synthetic=ecoli30x", "--scale=4000", "--ranks=4",
       "--output=" + counts_path, "--store-out=" + dir});
  ASSERT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("wrote store: 4 shards"), std::string::npos);

  const core::CountsFile flat = core::read_counts_binary_file(counts_path);
  const KmerStore store = KmerStore::open(dir);
  EXPECT_EQ(store.scan_all(), flat.counts);
  EXPECT_EQ(store.k(), flat.k);
  EXPECT_EQ(store.encoding(), flat.encoding);
}

TEST(StoreCliTest, QuerySubcommandReturnsStoredCounts) {
  const std::string dir = fresh_dir("store_cli_query");
  const AppResult count_result =
      run_cli({"count", "--synthetic=ecoli30x", "--scale=4000", "--ranks=4",
               "--store-out=" + dir});
  ASSERT_EQ(count_result.exit_code, 0) << count_result.err;

  const KmerStore store = KmerStore::open(dir);
  ASSERT_GE(store.scan_all().size(), 2u);
  const auto [key0, count0] = store.scan_all().front();
  const auto [key1, count1] = store.scan_all().back();
  const std::string kmer0 = kmer::unpack(key0, store.k(), store.encoding());
  const std::string kmer1 = kmer::unpack(key1, store.k(), store.encoding());

  const AppResult query_result = run_cli(
      {"query", "--store=" + dir, "--kmers=" + kmer0 + "," + kmer1,
       "--cache-shards=2"});
  ASSERT_EQ(query_result.exit_code, 0) << query_result.err;
  EXPECT_NE(query_result.out.find(
                kmer0 + "\t" + std::to_string(count0)),
            std::string::npos);
  EXPECT_NE(query_result.out.find(
                kmer1 + "\t" + std::to_string(count1)),
            std::string::npos);
}

TEST(StoreCliTest, QueryRejectsWrongLengthKmer) {
  const std::string dir = fresh_dir("store_cli_badk");
  const AppResult count_result =
      run_cli({"count", "--synthetic=ecoli30x", "--scale=8000", "--ranks=2",
               "--store-out=" + dir});
  ASSERT_EQ(count_result.exit_code, 0) << count_result.err;
  const AppResult query_result =
      run_cli({"query", "--store=" + dir, "--kmers=ACGT"});
  EXPECT_NE(query_result.exit_code, 0);
  EXPECT_NE(query_result.err.find("bases long"), std::string::npos);
}

}  // namespace
}  // namespace dedukt::store
