#include "dedukt/util/cli.hpp"

#include <gtest/gtest.h>

#include "dedukt/util/error.hpp"

namespace dedukt {
namespace {

CliParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliParser(static_cast<int>(argv.size()), argv.data());
}

TEST(CliTest, EqualsForm) {
  auto cli = parse({"--k=17", "--name=ecoli"});
  EXPECT_EQ(cli.get_int("k", 0), 17);
  EXPECT_EQ(cli.get("name"), "ecoli");
}

TEST(CliTest, SpaceSeparatedForm) {
  auto cli = parse({"--k", "21", "--out", "file.txt"});
  EXPECT_EQ(cli.get_int("k", 0), 21);
  EXPECT_EQ(cli.get("out"), "file.txt");
}

TEST(CliTest, BooleanFlagWithoutValue) {
  auto cli = parse({"--verbose", "--k=5"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
}

TEST(CliTest, BooleanExplicitValues) {
  auto cli = parse({"--a=true", "--b=false", "--c=1", "--d=0", "--e=yes",
                    "--f=no"});
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
  EXPECT_TRUE(cli.get_bool("e", false));
  EXPECT_FALSE(cli.get_bool("f", true));
}

TEST(CliTest, FallbacksWhenAbsent) {
  auto cli = parse({});
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  EXPECT_EQ(cli.get_int("missing", -4), -4);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
  EXPECT_TRUE(cli.get_bool("missing", true));
}

TEST(CliTest, PositionalArguments) {
  auto cli = parse({"input.fq", "--k=3", "output.txt"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.fq");
  EXPECT_EQ(cli.positional()[1], "output.txt");
}

TEST(CliTest, MalformedIntegerThrows) {
  auto cli = parse({"--k=abc"});
  EXPECT_THROW(cli.get_int("k", 0), ParseError);
}

TEST(CliTest, MalformedDoubleThrows) {
  auto cli = parse({"--x=1.5z"});
  EXPECT_THROW(cli.get_double("x", 0), ParseError);
}

TEST(CliTest, MalformedBoolThrows) {
  auto cli = parse({"--flag=maybe"});
  EXPECT_THROW(cli.get_bool("flag", false), ParseError);
}

TEST(CliTest, DoubleValues) {
  auto cli = parse({"--coverage=30.5"});
  EXPECT_DOUBLE_EQ(cli.get_double("coverage", 0), 30.5);
}

TEST(CliTest, ProgramName) {
  auto cli = parse({});
  EXPECT_EQ(cli.program(), "prog");
}

TEST(CliTest, NegativeIntegerValue) {
  auto cli = parse({"--offset=-12"});
  EXPECT_EQ(cli.get_int("offset", 0), -12);
}

}  // namespace
}  // namespace dedukt
