#include "dedukt/util/format.hpp"

#include <gtest/gtest.h>

namespace dedukt {
namespace {

TEST(FormatBytesTest, PlainBytes) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
}

TEST(FormatBytesTest, BinaryUnits) {
  EXPECT_EQ(format_bytes(1024), "1.00 KiB");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(1ull << 20), "1.00 MiB");
  EXPECT_EQ(format_bytes(1ull << 30), "1.00 GiB");
  EXPECT_EQ(format_bytes(317ull << 30), "317.00 GiB");
}

TEST(FormatCountTest, PaperStyleUnits) {
  // Table II uses 412M, 4.7B, 167B style.
  EXPECT_EQ(format_count(412'000'000), "412M");
  EXPECT_EQ(format_count(4'700'000'000ull), "4.7B");
  EXPECT_EQ(format_count(167'000'000'000ull), "167B");
}

TEST(FormatCountTest, SmallCountsVerbatim) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
}

TEST(FormatCountTest, Thousands) {
  EXPECT_EQ(format_count(1500), "1.5K");
  EXPECT_EQ(format_count(26'000), "26K");
}

TEST(FormatSecondsTest, UnitSelection) {
  EXPECT_EQ(format_seconds(2.0), "2.00 s");
  EXPECT_EQ(format_seconds(0.5), "500.00 ms");
  EXPECT_EQ(format_seconds(25e-6), "25.0 us");
  EXPECT_EQ(format_seconds(3e-9), "3.0 ns");
}

TEST(FormatFixedTest, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.14159, 0), "3");
  EXPECT_EQ(format_fixed(-1.005, 1), "-1.0");
}

TEST(FormatSpeedupTest, Factor) {
  EXPECT_EQ(format_speedup(1.5), "1.50x");
  EXPECT_EQ(format_speedup(150.0), "150.00x");
}

}  // namespace
}  // namespace dedukt
