#include "dedukt/util/error.hpp"

#include <gtest/gtest.h>

namespace dedukt {
namespace {

TEST(ErrorTest, CheckPassesOnTrue) {
  EXPECT_NO_THROW(DEDUKT_CHECK(1 + 1 == 2));
}

TEST(ErrorTest, CheckThrowsErrorOnFalse) {
  EXPECT_THROW(DEDUKT_CHECK(1 + 1 == 3), Error);
}

TEST(ErrorTest, RequireThrowsPreconditionError) {
  EXPECT_THROW(DEDUKT_REQUIRE(false), PreconditionError);
}

TEST(ErrorTest, PreconditionErrorIsAnError) {
  try {
    DEDUKT_REQUIRE(false);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("DEDUKT_REQUIRE"),
              std::string::npos);
  }
}

TEST(ErrorTest, MessageCapturesExpressionAndLocation) {
  try {
    DEDUKT_CHECK(2 < 1);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, StreamedMessageIsIncluded) {
  try {
    DEDUKT_CHECK_MSG(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(ErrorTest, RequireMsgThrowsPreconditionWithMessage) {
  try {
    DEDUKT_REQUIRE_MSG(false, "bad k=" << 99);
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("bad k=99"), std::string::npos);
  }
}

TEST(ErrorTest, ParseErrorHierarchy) {
  EXPECT_THROW(throw ParseError("x"), Error);
  EXPECT_THROW(throw SimulationError("x"), Error);
}

}  // namespace
}  // namespace dedukt
