#include "dedukt/util/stats.hpp"

#include <gtest/gtest.h>

namespace dedukt {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(LoadImbalanceTest, PerfectBalance) {
  std::vector<std::uint64_t> loads = {10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(load_imbalance(loads), 1.0);
}

TEST(LoadImbalanceTest, PaperStyleValue) {
  // Table III: max / average.
  std::vector<std::uint64_t> loads = {100, 100, 100, 237 * 4 - 300};
  const double avg = (100 + 100 + 100 + 648) / 4.0;
  EXPECT_DOUBLE_EQ(load_imbalance(loads), 648.0 / avg);
}

TEST(LoadImbalanceTest, EmptyAndZeroAreOne) {
  std::vector<std::uint64_t> empty;
  EXPECT_DOUBLE_EQ(load_imbalance(empty), 1.0);
  std::vector<std::uint64_t> zeros = {0, 0, 0};
  EXPECT_DOUBLE_EQ(load_imbalance(zeros), 1.0);
}

TEST(LoadImbalanceTest, DoubleValues) {
  std::vector<double> loads = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(load_imbalance(loads), 3.0 / 2.0);
}

TEST(PercentileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 50), 2.0);
}

TEST(PercentileTest, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 100), 9.0);
}

TEST(PercentileTest, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 25), 2.5);
}

TEST(PercentileTest, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50), PreconditionError);
  EXPECT_THROW(percentile({1.0}, 101), PreconditionError);
}

}  // namespace
}  // namespace dedukt
