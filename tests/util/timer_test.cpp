#include "dedukt/util/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace dedukt {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);  // generous upper bound for loaded CI machines
}

TEST(TimerTest, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(TimerTest, MillisMatchesSeconds) {
  Timer t;
  const double s = t.seconds();
  const double ms = t.millis();
  EXPECT_GE(ms, s * 1e3);
}

TEST(PhaseTimesTest, AccumulatesByName) {
  PhaseTimes p;
  p.add("parse", 1.0);
  p.add("parse", 0.5);
  p.add("count", 2.0);
  EXPECT_DOUBLE_EQ(p.get("parse"), 1.5);
  EXPECT_DOUBLE_EQ(p.get("count"), 2.0);
  EXPECT_DOUBLE_EQ(p.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(p.total(), 3.5);
}

TEST(PhaseTimesTest, MergeSums) {
  PhaseTimes a, b;
  a.add("x", 1.0);
  b.add("x", 2.0);
  b.add("y", 3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.get("y"), 3.0);
}

TEST(PhaseTimesTest, MaxMergeTakesMaximumPerPhase) {
  PhaseTimes a, b;
  a.add("x", 5.0);
  a.add("y", 1.0);
  b.add("x", 2.0);
  b.add("y", 4.0);
  a.max_merge(b);
  EXPECT_DOUBLE_EQ(a.get("x"), 5.0);
  EXPECT_DOUBLE_EQ(a.get("y"), 4.0);
}

TEST(ScopedPhaseTest, RecordsScopeDuration) {
  PhaseTimes p;
  {
    ScopedPhase phase(p, "work");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(p.get("work"), 0.005);
}

}  // namespace
}  // namespace dedukt
