#include "dedukt/util/table.hpp"

#include <gtest/gtest.h>

namespace dedukt {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t("My Table");
  t.set_header({"name", "count"});
  t.add_row({"E. coli", "412M"});
  t.add_row({"H. sapien", "167B"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("My Table"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("E. coli"), std::string::npos);
  EXPECT_NE(s.find("167B"), std::string::npos);
}

TEST(TextTableTest, PadsShortRows) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  const std::string s = t.to_string();
  // Every rendered line between rules has the same length.
  std::size_t expected = 0;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t end = s.find('\n', pos);
    const std::size_t len = end - pos;
    if (expected == 0) expected = len;
    EXPECT_EQ(len, expected);
    pos = end + 1;
  }
}

TEST(TextTableTest, NumericCellsRightAligned) {
  TextTable t;
  t.set_header({"col"});
  t.add_row({"1234"});
  t.add_row({"999999"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("|   1234 |"), std::string::npos);
}

TEST(TextTableTest, EmptyTableStillRenders) {
  TextTable t;
  EXPECT_FALSE(t.to_string().empty());
}

TEST(TextTableTest, WidthsAdaptToLongestCell) {
  TextTable t;
  t.set_header({"x"});
  t.add_row({"a-very-long-cell-value"});
  EXPECT_NE(t.to_string().find("a-very-long-cell-value"), std::string::npos);
}

}  // namespace
}  // namespace dedukt
