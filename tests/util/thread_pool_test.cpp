#include "dedukt/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dedukt/util/error.hpp"

namespace dedukt::util {
namespace {

TEST(ThreadPoolTest, EveryChunkRunsExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::uint64_t kChunks = 200;
    std::vector<std::atomic<int>> hits(kChunks);
    pool.run_chunks(kChunks, [&](std::uint64_t chunk) {
      hits[chunk].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::uint64_t i = 0; i < kChunks; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "chunk " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInAscendingOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::uint64_t> order;
  pool.run_chunks(50, [&](std::uint64_t chunk) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(chunk);
  });
  ASSERT_EQ(order.size(), 50u);
  for (std::uint64_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ZeroChunksIsANoOp) {
  ThreadPool pool(4);
  pool.run_chunks(0, [](std::uint64_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, NestedSubmissionCompletes) {
  // A chunk body that itself submits to the same pool: progress must not
  // require a free worker (the simulated-kernel-inside-rank-thread shape).
  ThreadPool pool(4);
  std::atomic<int> inner_runs{0};
  pool.run_chunks(8, [&](std::uint64_t) {
    pool.run_chunks(8, [&](std::uint64_t) {
      inner_runs.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_runs.load(), 64);
}

TEST(ThreadPoolTest, ManyExternalThreadsShareOnePool) {
  // mpisim rank threads all launch kernels into the shared pool at once.
  ThreadPool pool(4);
  constexpr int kCallers = 16;
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&] {
      pool.run_chunks(32, [&](std::uint64_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), kCallers * 32);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCallerAndPoolSurvives) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.run_chunks(64,
                        [&](std::uint64_t chunk) {
                          if (chunk == 3) throw std::runtime_error("boom");
                        }),
        std::runtime_error);
    // The pool must stay usable after a failed job.
    std::atomic<int> runs{0};
    pool.run_chunks(16, [&](std::uint64_t) {
      runs.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(runs.load(), 16);
  }
}

TEST(ThreadPoolTest, ConfiguredThreadsReadsEnvironment) {
  ::setenv("DEDUKT_SIM_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::configured_threads(), 3u);
  ::setenv("DEDUKT_SIM_THREADS", "0", 1);
  EXPECT_THROW(ThreadPool::configured_threads(), PreconditionError);
  ::setenv("DEDUKT_SIM_THREADS", "banana", 1);
  EXPECT_THROW(ThreadPool::configured_threads(), PreconditionError);
  ::unsetenv("DEDUKT_SIM_THREADS");
  EXPECT_GE(ThreadPool::configured_threads(), 1u);
}

TEST(ThreadPoolTest, SetGlobalThreadsReplacesTheSharedPool) {
  ThreadPool::set_global_threads(2);
  EXPECT_EQ(ThreadPool::global().threads(), 2u);
  std::atomic<int> runs{0};
  ThreadPool::global().run_chunks(10, [&](std::uint64_t) {
    runs.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(runs.load(), 10);

  ::setenv("DEDUKT_SIM_THREADS", "5", 1);
  ThreadPool::set_global_threads(0);  // 0 = re-read the environment
  EXPECT_EQ(ThreadPool::global().threads(), 5u);
  ::unsetenv("DEDUKT_SIM_THREADS");
  ThreadPool::set_global_threads(1);
}

}  // namespace
}  // namespace dedukt::util
