#include "dedukt/util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dedukt {
namespace {

TEST(XoshiroTest, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(XoshiroTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(XoshiroTest, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int bound : {1, 2, 3, 10, 1000, 1 << 20}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(static_cast<std::uint64_t>(bound)),
                static_cast<std::uint64_t>(bound));
    }
  }
}

TEST(XoshiroTest, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(XoshiroTest, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  // Mean of U(0,1) is 0.5; with 10k draws the sample mean is within ~1%.
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(XoshiroTest, BelowIsRoughlyUniform) {
  Xoshiro256 rng(13);
  constexpr std::uint64_t kBound = 8;
  std::vector<int> buckets(kBound, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.below(kBound)];
  for (const int count : buckets) {
    EXPECT_NEAR(count, kDraws / static_cast<int>(kBound),
                kDraws / static_cast<int>(kBound) / 10);
  }
}

TEST(XoshiroTest, StreamsAreIndependent) {
  Xoshiro256 s0 = Xoshiro256::for_stream(42, 0);
  Xoshiro256 s1 = Xoshiro256::for_stream(42, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (s0() == s1()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(XoshiroTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(rng());
  EXPECT_EQ(seen.size(), 64u);  // no short cycles
}

}  // namespace
}  // namespace dedukt
