#include "dedukt/util/log.hpp"

#include <gtest/gtest.h>

namespace dedukt {
namespace {

TEST(LogTest, LevelRoundTrips) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(before);
}

TEST(LogTest, EmittingBelowThresholdDoesNotCrash) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  DEDUKT_LOG_DEBUG << "suppressed " << 42;
  DEDUKT_LOG_INFO << "suppressed too";
  set_log_level(before);
}

TEST(LogTest, StreamingOperatorsCompose) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);  // keep test output clean
  DEDUKT_LOG_WARN << "a" << 1 << 2.5 << std::string("b");
  set_log_level(before);
}

}  // namespace
}  // namespace dedukt
