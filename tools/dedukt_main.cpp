// The `dedukt` command-line tool. All logic lives in dedukt::core::run_app
// (src/core/src/app.cpp) so the test suite can drive it directly.
#include <iostream>

#include "dedukt/core/app.hpp"

int main(int argc, char** argv) {
  return dedukt::core::run_app(argc, argv, std::cout, std::cerr);
}
